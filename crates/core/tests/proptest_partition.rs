//! Property tests for the query↔item graph partitioner.
//!
//! The partitioner's contract (DESIGN.md §13): shards form a disjoint
//! cover of queries and items, every cross-shard reference is accounted
//! exactly once in `cross_edges`, and the packed shard loads sum to the
//! unsharded total — for any graph shape (empty queries, unreferenced
//! items, single giant components, duplicate item references) and any
//! shard count.

use proptest::prelude::*;

use pq_core::{partition, PartitionInput};

/// A random bipartite graph: `n_items`, per-query item lists (possibly
/// empty, possibly with duplicates), and positive loads.
#[derive(Debug, Clone)]
struct Graph {
    query_items: Vec<Vec<u32>>,
    n_items: usize,
    item_load: Vec<f64>,
    query_load: Vec<f64>,
}

/// Generates at fixed maximum sizes and folds item ids into `n_items`
/// afterwards (the vendored proptest has no `prop_flat_map` for
/// size-dependent strategies).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        1usize..60,
        proptest::collection::vec(proptest::collection::vec(0u32..60, 0..8), 0..40),
        proptest::collection::vec(0.01f64..10.0, 60..=60),
        proptest::collection::vec(0.01f64..10.0, 40..=40),
    )
        .prop_map(|(n_items, raw_items, item_load, query_load)| {
            let query_items: Vec<Vec<u32>> = raw_items
                .into_iter()
                .map(|items| items.into_iter().map(|i| i % n_items as u32).collect())
                .collect();
            let n_queries = query_items.len();
            Graph {
                query_items,
                n_items,
                item_load: item_load[..n_items].to_vec(),
                query_load: query_load[..n_queries].to_vec(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Disjoint cover: every query and item gets exactly one in-range
    /// shard; cross edges match the references that actually cross,
    /// each `(item, remote)` pair once; loads are conserved.
    #[test]
    fn plan_invariants_hold(g in arb_graph(), k in 1usize..9) {
        let input = PartitionInput {
            query_items: &g.query_items,
            n_items: g.n_items,
            item_load: &g.item_load,
            query_load: &g.query_load,
        };
        let plan = partition(&input, k);

        prop_assert_eq!(plan.n_shards, k);
        prop_assert_eq!(plan.query_shard.len(), g.query_items.len());
        prop_assert_eq!(plan.item_home.len(), g.n_items);
        for &s in &plan.query_shard {
            prop_assert!((s as usize) < k);
        }
        for &s in &plan.item_home {
            prop_assert!((s as usize) < k);
        }

        // Every cross-shard reference accounted exactly once.
        let mut expected: Vec<(u32, u32)> = Vec::new();
        for (qi, items) in g.query_items.iter().enumerate() {
            let qs = plan.query_shard[qi];
            for &i in items {
                if plan.item_home[i as usize] != qs {
                    expected.push((i, qs));
                }
            }
        }
        expected.sort_unstable();
        expected.dedup();
        let actual: Vec<(u32, u32)> =
            plan.cross_edges.iter().map(|e| (e.item, e.remote)).collect();
        prop_assert_eq!(actual, expected);
        for e in &plan.cross_edges {
            prop_assert_eq!(e.home, plan.item_home[e.item as usize]);
            prop_assert!(e.home != e.remote, "self-edge on item {}", e.item);
        }

        // Load conservation: packed loads sum to the unsharded total.
        let total: f64 =
            g.item_load.iter().sum::<f64>() + g.query_load.iter().sum::<f64>();
        let packed: f64 = plan.shard_loads.iter().sum();
        prop_assert!(
            (total - packed).abs() <= 1e-9 * (1.0 + total.abs()),
            "packed {} != total {}", packed, total
        );

        // k = 1 degenerates to the unsharded engine: no cross edges.
        if k == 1 {
            prop_assert!(plan.is_clean());
        }
    }

    /// Determinism: the same input always yields the identical plan.
    #[test]
    fn plan_is_deterministic(g in arb_graph(), k in 1usize..9) {
        let input = PartitionInput {
            query_items: &g.query_items,
            n_items: g.n_items,
            item_load: &g.item_load,
            query_load: &g.query_load,
        };
        let a = partition(&input, k);
        let b = partition(&input, k);
        prop_assert_eq!(a.query_shard, b.query_shard);
        prop_assert_eq!(a.item_home, b.item_home);
        prop_assert_eq!(a.cross_edges, b.cross_edges);
        prop_assert_eq!(a.shard_loads, b.shard_loads);
    }

    /// Queries sharing items land on the same shard unless their
    /// component was split — i.e. whole components are never scattered:
    /// if a component produced no cross edges, all its queries share
    /// one shard.
    #[test]
    fn unsplit_components_stay_whole(g in arb_graph(), k in 1usize..5) {
        let input = PartitionInput {
            query_items: &g.query_items,
            n_items: g.n_items,
            item_load: &g.item_load,
            query_load: &g.query_load,
        };
        let plan = partition(&input, k);
        let crossed: std::collections::HashSet<u32> =
            plan.cross_edges.iter().map(|e| e.item).collect();
        for (qi, items) in g.query_items.iter().enumerate() {
            // A query none of whose items cross shards must be co-located
            // with all of them.
            if items.iter().all(|i| !crossed.contains(i)) {
                for &i in items {
                    prop_assert_eq!(
                        plan.item_home[i as usize],
                        plan.query_shard[qi],
                        "uncrossed item {} split from query {}", i, qi
                    );
                }
            }
        }
    }
}
