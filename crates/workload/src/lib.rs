//! # pq-workload — the paper's query workloads (§V-A)
//!
//! Reimplements the experimental methodology: 100 data items served by 20
//! sources, an 80–20 popularity model (group 1 holds 20 % of the items and
//! receives 80 % of the picks), portfolio PPQs and arbitrage PQs of 12–14
//! items each, weights uniform in `[1, 100]`, and QABs set to 1 % (PPQs) /
//! 2 % (PQs) of the initial query value.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pq_poly::{ItemId, PolynomialQuery};

/// Parameters of the 80–20 query generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Total data items in the universe (the paper uses 100).
    pub n_items: usize,
    /// Fraction of items in the popular group 1 (paper: 0.2).
    pub group1_fraction: f64,
    /// Probability an item pick lands in group 1 (paper: 0.8).
    pub group1_probability: f64,
    /// Product legs per query; 6–7 legs × 2 items ≈ the paper's
    /// 12–14 items per query.
    pub legs: std::ops::RangeInclusive<usize>,
    /// Term weights drawn uniformly from this range (paper: 1–100).
    pub weight_range: std::ops::RangeInclusive<f64>,
    /// QAB as a fraction of the initial query value (PPQ: 0.01).
    pub ppq_qab_fraction: f64,
    /// QAB as a fraction of the initial *sum-of-sides* value for
    /// arbitrage queries (PQ: 0.02).
    pub pq_qab_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_items: 100,
            group1_fraction: 0.2,
            group1_probability: 0.8,
            legs: 6..=7,
            weight_range: 1.0..=100.0,
            ppq_qab_fraction: 0.01,
            pq_qab_fraction: 0.02,
        }
    }
}

/// Seeded generator of the paper's query workloads.
#[derive(Debug)]
pub struct WorkloadGen {
    cfg: WorkloadConfig,
    rng: StdRng,
}

impl WorkloadGen {
    /// Creates a generator with the paper's defaults.
    pub fn new(seed: u64) -> Self {
        WorkloadGen::with_config(WorkloadConfig::default(), seed)
    }

    /// Creates a generator with explicit parameters.
    pub fn with_config(cfg: WorkloadConfig, seed: u64) -> Self {
        assert!(cfg.n_items >= 4, "need at least 4 items");
        assert!((0.0..1.0).contains(&cfg.group1_fraction) && cfg.group1_fraction > 0.0);
        WorkloadGen {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    fn group1_size(&self) -> usize {
        ((self.cfg.n_items as f64 * self.cfg.group1_fraction) as usize).max(1)
    }

    /// Draws one item under the 80–20 model.
    fn pick_item(&mut self) -> ItemId {
        let g1 = self.group1_size();
        let idx = if self.rng.gen::<f64>() < self.cfg.group1_probability {
            self.rng.gen_range(0..g1)
        } else {
            self.rng.gen_range(g1..self.cfg.n_items)
        };
        ItemId(idx as u32)
    }

    /// Draws a pair of distinct items.
    fn pick_pair(&mut self) -> (ItemId, ItemId) {
        let a = self.pick_item();
        loop {
            let b = self.pick_item();
            if b != a {
                return (a, b);
            }
        }
    }

    fn pick_weight(&mut self) -> f64 {
        self.rng
            .gen_range(*self.cfg.weight_range.start()..=*self.cfg.weight_range.end())
            .round()
    }

    fn pick_legs(&mut self) -> usize {
        self.rng
            .gen_range(*self.cfg.legs.start()..=*self.cfg.legs.end())
    }

    /// Generates `n` global-portfolio PPQs (Query 1(a)):
    /// `sum_i w_i x_a x_b : 1% of initial value`.
    ///
    /// `initial_values` must cover all `n_items` (used to set QABs).
    pub fn portfolio_queries(&mut self, n: usize, initial_values: &[f64]) -> Vec<PolynomialQuery> {
        assert!(initial_values.len() >= self.cfg.n_items);
        (0..n)
            .map(|_| {
                let legs: Vec<(f64, ItemId, ItemId)> = (0..self.pick_legs())
                    .map(|_| {
                        let (a, b) = self.pick_pair();
                        (self.pick_weight(), a, b)
                    })
                    .collect();
                let q = PolynomialQuery::portfolio(legs.iter().copied(), 1.0)
                    .expect("positive weights and bound");
                let initial = q.eval(initial_values);
                let qab = (self.cfg.ppq_qab_fraction * initial.abs()).max(1e-9);
                q.with_qab(qab).expect("positive bound")
            })
            .collect()
    }

    /// Generates `n` arbitrage PQs (Query 1(b)):
    /// `sum_i w_i x_a x_b − sum_j w_j u_a u_b : 2% of initial magnitude`.
    ///
    /// With `independent = true`, the buy and sell sides draw from
    /// disjoint halves of each group (Fig. 8(a)); otherwise both sides use
    /// the full 80–20 model and typically share items (Fig. 8(b)).
    ///
    /// Arbitrage values hover near zero, so the QAB is anchored to the
    /// initial *sum of sides* `P1(V0) + P2(V0)` instead of the near-zero
    /// difference (documented substitution; keeps bounds meaningful).
    pub fn arbitrage_queries(
        &mut self,
        n: usize,
        initial_values: &[f64],
        independent: bool,
    ) -> Vec<PolynomialQuery> {
        assert!(initial_values.len() >= self.cfg.n_items);
        (0..n)
            .map(|_| {
                let side_legs = (self.pick_legs() / 2).max(2);
                let buy: Vec<(f64, ItemId, ItemId)> = (0..side_legs)
                    .map(|_| {
                        let (a, b) = if independent {
                            self.pick_pair_in_half(0)
                        } else {
                            self.pick_pair()
                        };
                        (self.pick_weight(), a, b)
                    })
                    .collect();
                let sell: Vec<(f64, ItemId, ItemId)> = (0..side_legs)
                    .map(|_| {
                        let (a, b) = if independent {
                            self.pick_pair_in_half(1)
                        } else {
                            self.pick_pair()
                        };
                        (self.pick_weight(), a, b)
                    })
                    .collect();
                let q = PolynomialQuery::arbitrage(buy.iter().copied(), sell.iter().copied(), 1.0)
                    .expect("positive weights and bound");
                let (p1, p2) = q.poly().split_pos_neg();
                let magnitude = p1.eval(initial_values) + p2.eval(initial_values);
                let qab = (self.cfg.pq_qab_fraction * magnitude).max(1e-9);
                q.with_qab(qab).expect("positive bound")
            })
            .collect()
    }

    /// Generates `n` portfolio PPQs over **disjoint consecutive item
    /// bands**: query `j` draws its legs only from items
    /// `[j·band, (j+1)·band)` where `band = n_items / n`. Weights, leg
    /// counts and within-band picks still follow the configured
    /// distributions, but no two queries share an item, so the
    /// query↔item graph has `n` connected components — the "large book"
    /// shape (many independent portfolios over one big universe) that
    /// the sharded engine partitions cleanly.
    ///
    /// # Panics
    /// Panics unless each band holds at least 2 items
    /// (`n_items >= 2 * n`).
    pub fn banded_portfolio_queries(
        &mut self,
        n: usize,
        initial_values: &[f64],
    ) -> Vec<PolynomialQuery> {
        assert!(initial_values.len() >= self.cfg.n_items);
        assert!(n > 0, "need at least one query");
        let band = self.cfg.n_items / n;
        assert!(
            band >= 2,
            "banded workload needs >= 2 items per query ({} items / {n} queries)",
            self.cfg.n_items
        );
        (0..n)
            .map(|j| {
                let lo = (j * band) as u32;
                let hi = lo + band as u32;
                let legs: Vec<(f64, ItemId, ItemId)> = (0..self.pick_legs())
                    .map(|_| {
                        let a = ItemId(self.rng.gen_range(lo..hi));
                        let b = loop {
                            let b = ItemId(self.rng.gen_range(lo..hi));
                            if b != a {
                                break b;
                            }
                        };
                        (self.pick_weight(), a, b)
                    })
                    .collect();
                let q = PolynomialQuery::portfolio(legs.iter().copied(), 1.0)
                    .expect("positive weights and bound");
                let initial = q.eval(initial_values);
                let qab = (self.cfg.ppq_qab_fraction * initial.abs()).max(1e-9);
                q.with_qab(qab).expect("positive bound")
            })
            .collect()
    }

    /// Generates `n` portfolio PPQs whose legs draw from a **shared
    /// pool of distinct item pairs**, so the same monomial `x_a·x_b`
    /// recurs across many queries — the workload shape the cross-query
    /// shared-evaluation compiler ([`pq_poly::SharedPlan`]) exploits.
    ///
    /// `overlap` in `[0, 1)` controls how much the book shares: the
    /// pool holds roughly `(1 − overlap) × total legs` distinct pairs,
    /// so at `0.0` most legs introduce fresh monomials while at `0.9`
    /// ten legs compete for every pool slot. Within the pool, draws
    /// follow the configured 80–20 popularity model (the first
    /// `group1_fraction` of the pool receives `group1_probability` of
    /// the picks), weights are fresh per leg, and QABs follow
    /// [`WorkloadGen::portfolio_queries`].
    ///
    /// # Panics
    /// Panics unless `0.0 <= overlap < 1.0`.
    pub fn overlapping_book(
        &mut self,
        n: usize,
        overlap: f64,
        initial_values: &[f64],
    ) -> Vec<PolynomialQuery> {
        assert!(initial_values.len() >= self.cfg.n_items);
        assert!(
            (0.0..1.0).contains(&overlap),
            "overlap factor {overlap} outside [0, 1)"
        );
        let mean_legs = (self.cfg.legs.start() + self.cfg.legs.end()) as f64 / 2.0;
        let max_pairs = self.cfg.n_items * (self.cfg.n_items - 1) / 2;
        let pool_size =
            ((n as f64 * mean_legs * (1.0 - overlap)).ceil() as usize).clamp(1, max_pairs);
        let mut seen = std::collections::HashSet::with_capacity(pool_size);
        let mut pool: Vec<(ItemId, ItemId)> = Vec::with_capacity(pool_size);
        while pool.len() < pool_size {
            let (a, b) = self.pick_pair();
            // x_a·x_b == x_b·x_a: canonicalize so the pool counts
            // distinct monomials, not ordered pairs.
            let pair = if a.0 <= b.0 { (a, b) } else { (b, a) };
            if seen.insert(pair) {
                pool.push(pair);
            }
        }
        let hot = ((pool.len() as f64 * self.cfg.group1_fraction) as usize).max(1);
        (0..n)
            .map(|_| {
                let legs: Vec<(f64, ItemId, ItemId)> = (0..self.pick_legs())
                    .map(|_| {
                        let k = if self.rng.gen::<f64>() < self.cfg.group1_probability {
                            self.rng.gen_range(0..hot)
                        } else {
                            self.rng.gen_range(hot.min(pool.len() - 1)..pool.len())
                        };
                        let (a, b) = pool[k];
                        (self.pick_weight(), a, b)
                    })
                    .collect();
                let q = PolynomialQuery::portfolio(legs.iter().copied(), 1.0)
                    .expect("positive weights and bound");
                let initial = q.eval(initial_values);
                let qab = (self.cfg.ppq_qab_fraction * initial.abs()).max(1e-9);
                q.with_qab(qab).expect("positive bound")
            })
            .collect()
    }

    /// 80–20 pick restricted to one half of each group (`half` 0 or 1),
    /// guaranteeing buy/sell independence.
    fn pick_pair_in_half(&mut self, half: usize) -> (ItemId, ItemId) {
        let g1 = self.group1_size();
        let pick = |rng: &mut StdRng, cfg: &WorkloadConfig| {
            let in_g1 = rng.gen::<f64>() < cfg.group1_probability;
            let (lo, hi) = if in_g1 { (0, g1) } else { (g1, cfg.n_items) };
            let mid = lo + (hi - lo) / 2;
            let (lo, hi) = if half == 0 { (lo, mid) } else { (mid, hi) };
            ItemId(rng.gen_range(lo..hi.max(lo + 1)) as u32)
        };
        let a = pick(&mut self.rng, &self.cfg);
        loop {
            let b = pick(&mut self.rng, &self.cfg);
            if b != a {
                return (a, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_poly::QueryClass;

    fn values() -> Vec<f64> {
        (0..100).map(|i| 10.0 + i as f64).collect()
    }

    #[test]
    fn portfolio_queries_match_paper_shape() {
        let mut g = WorkloadGen::new(7);
        let qs = g.portfolio_queries(50, &values());
        assert_eq!(qs.len(), 50);
        for q in &qs {
            assert_eq!(q.class(), QueryClass::PositiveCoefficient);
            let n_items = q.items().len();
            // 6-7 legs x 2 items, some overlap allowed.
            assert!((6..=14).contains(&n_items), "items per query {n_items}");
            // QAB is 1% of initial value.
            let initial = q.eval(&values());
            assert!((q.qab() - 0.01 * initial).abs() < 1e-9 * initial);
        }
    }

    #[test]
    fn eighty_twenty_split_is_respected() {
        let mut g = WorkloadGen::new(11);
        let qs = g.portfolio_queries(300, &values());
        let mut g1 = 0usize;
        let mut total = 0usize;
        for q in &qs {
            for t in q.poly().terms() {
                for &(item, _) in t.vars() {
                    total += 1;
                    if item.index() < 20 {
                        g1 += 1;
                    }
                }
            }
        }
        let frac = g1 as f64 / total as f64;
        assert!(
            (frac - 0.8).abs() < 0.05,
            "group-1 fraction {frac} should be ~0.8"
        );
    }

    #[test]
    fn arbitrage_queries_are_general_pqs() {
        let mut g = WorkloadGen::new(13);
        let qs = g.arbitrage_queries(50, &values(), false);
        for q in &qs {
            assert_eq!(q.class(), QueryClass::General);
            let (p1, p2) = q.poly().split_pos_neg();
            assert!(!p1.is_zero() && !p2.is_zero());
            assert!(q.qab() > 0.0);
        }
    }

    #[test]
    fn independent_arbitrage_sides_share_no_items() {
        let mut g = WorkloadGen::new(17);
        let qs = g.arbitrage_queries(100, &values(), true);
        for q in &qs {
            let (p1, p2) = q.poly().split_pos_neg();
            assert!(p1.is_independent_of(&p2), "sides share items in {q}");
        }
    }

    #[test]
    fn dependent_arbitrage_often_shares_items() {
        let mut g = WorkloadGen::new(19);
        let qs = g.arbitrage_queries(100, &values(), false);
        let sharing = qs
            .iter()
            .filter(|q| {
                let (p1, p2) = q.poly().split_pos_neg();
                !p1.is_independent_of(&p2)
            })
            .count();
        assert!(sharing > 30, "only {sharing}/100 queries share items");
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = WorkloadGen::new(23).portfolio_queries(10, &values());
        let b = WorkloadGen::new(23).portfolio_queries(10, &values());
        assert_eq!(a, b);
        let c = WorkloadGen::new(24).portfolio_queries(10, &values());
        assert_ne!(a, c);
    }

    #[test]
    fn banded_queries_are_pairwise_disjoint() {
        let mut g = WorkloadGen::with_config(
            WorkloadConfig {
                n_items: 120,
                ..WorkloadConfig::default()
            },
            31,
        );
        let values: Vec<f64> = (0..120).map(|i| 10.0 + i as f64).collect();
        let qs = g.banded_portfolio_queries(10, &values);
        assert_eq!(qs.len(), 10);
        for (j, q) in qs.iter().enumerate() {
            let items = q.items();
            assert!(items.len() >= 2);
            for item in items {
                assert!(
                    (12 * j..12 * (j + 1)).contains(&item.index()),
                    "query {j} escaped its band: item {}",
                    item.index()
                );
            }
            assert!(q.qab() > 0.0);
        }
        // Across queries: no shared items at all.
        let mut all = std::collections::HashSet::new();
        for q in &qs {
            for item in q.items() {
                assert!(all.insert(item.index()), "item shared across bands");
            }
        }
    }

    #[test]
    fn overlapping_book_shares_monomials_by_factor() {
        use pq_poly::SharedPlan;
        let values = values();
        let distinct_at = |overlap: f64| {
            let mut g = WorkloadGen::new(37);
            let qs = g.overlapping_book(200, overlap, &values);
            assert_eq!(qs.len(), 200);
            let total_legs: usize = qs.iter().map(|q| q.poly().terms().len()).sum();
            let plan = SharedPlan::compile(qs.iter().map(|q| q.poly()));
            assert!(plan.n_terms() <= total_legs);
            plan.n_terms()
        };
        let loose = distinct_at(0.0);
        let tight = distinct_at(0.9);
        assert!(
            tight * 3 < loose,
            "overlap 0.9 ({tight} distinct) should share far more than 0.0 ({loose})"
        );
        // At 0.9 the pool is ~10x oversubscribed: the whole 200-query
        // book must fit in a small distinct-monomial set.
        assert!(tight <= 200 * 7 / 10 + 1, "pool leaked: {tight} distinct");
    }

    #[test]
    fn overlapping_book_keeps_portfolio_shape() {
        let mut g = WorkloadGen::new(41);
        let values = values();
        let qs = g.overlapping_book(50, 0.5, &values);
        for q in &qs {
            assert_eq!(q.class(), QueryClass::PositiveCoefficient);
            let initial = q.eval(&values);
            assert!((q.qab() - 0.01 * initial).abs() < 1e-9 * initial);
        }
        // Seed-deterministic like every other generator.
        let a = WorkloadGen::new(43).overlapping_book(10, 0.5, &values);
        let b = WorkloadGen::new(43).overlapping_book(10, 0.5, &values);
        assert_eq!(a, b);
    }

    #[test]
    fn weights_stay_in_range() {
        let mut g = WorkloadGen::new(29);
        for q in g.portfolio_queries(50, &values()) {
            for t in q.poly().terms() {
                assert!((1.0..=100.0).contains(&t.coef()), "weight {}", t.coef());
            }
        }
    }
}
