//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! 1. **mu sensitivity** — how the refresh/recompute split of the Dual-DAB
//!    optimum moves as the recomputation cost mu grows (§III-A.3's
//!    "Effect of mu": larger mu → tighter primary DABs, larger validity
//!    ranges, fewer recomputations).
//! 2. **Forced `c = b`** — Dual-DAB with its secondary range collapsed to
//!    the primary width. This isolates the dual-DAB idea itself: with
//!    `c = b`, validity dies almost immediately and behaviour degenerates
//!    toward Optimal Refresh.
//! 3. **Rate information** — exact per-trace rates vs 60 s sampled
//!    estimates vs none (lambda = 1): the value of knowing how fast data
//!    moves.

use pq_bench::{fmt, print_table, Scale};
use pq_core::{AssignmentStrategy, PqHeuristic, SolveContext};
use pq_ddm::RateEstimator;
use pq_poly::ItemId;
use pq_sim::{run, DelayConfig, SimConfig, SimStrategy};

fn main() {
    mu_sensitivity();
    forced_secondary();
    rate_information();
}

fn mu_sensitivity() {
    let q = pq_poly::PolynomialQuery::portfolio([(1.0, ItemId(0), ItemId(1))], 5.0).unwrap();
    let values = [20.0, 30.0];
    let rates = [2.0, 1.0];
    let ctx = SolveContext::new(&values, &rates);
    let mut rows = Vec::new();
    for mu in [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0] {
        let a = pq_core::dual_dab(&q, &ctx, mu).unwrap();
        rows.push(vec![
            fmt(mu),
            fmt(a.primary_dab(ItemId(0)).unwrap()),
            fmt(a.secondary_dab(ItemId(0)).unwrap()),
            fmt(a.refresh_rate),
            fmt(a.recompute_rate),
            fmt(a.refresh_rate + mu * a.recompute_rate),
        ]);
    }
    print_table(
        "Ablation 1: mu sensitivity (Q = xy : 5, V = (20,30))",
        &["mu", "b_x", "c_x", "refresh/s", "recompute/s", "model cost"],
        &rows,
    );
}

fn forced_secondary() {
    let scale = Scale::from_env();
    let traces = scale.universe();
    let n = *scale.query_counts.first().unwrap_or(&50);
    let queries = scale
        .workload()
        .portfolio_queries(n, &traces.initial_values());

    let mut rows = Vec::new();
    for (label, strategy) in [
        ("optimal-refresh", AssignmentStrategy::OptimalRefresh),
        // mu -> 0+ approximates "secondary barely wider than primary":
        // the optimizer has almost no budget for validity range.
        (
            "dual-dab(mu=0.01)",
            AssignmentStrategy::DualDab { mu: 0.01 },
        ),
        ("dual-dab(mu=5)", AssignmentStrategy::DualDab { mu: 5.0 }),
    ] {
        let mut cfg = SimConfig::new(traces.clone(), queries.clone());
        cfg.gp = scale.sim_gp_options();
        cfg.strategy = SimStrategy::PerQuery {
            strategy,
            heuristic: PqHeuristic::DifferentSum,
        };
        cfg.delays = DelayConfig::zero();
        let m = run(&cfg).unwrap_or_else(|e| panic!("{label}: {e}"));
        rows.push(vec![
            label.to_string(),
            m.refreshes.to_string(),
            m.recomputations.to_string(),
            fmt(m.total_cost(5.0)),
        ]);
    }
    print_table(
        &format!("Ablation 2: value of the secondary range ({n} PPQs, cost at mu=5)"),
        &["scheme", "refreshes", "recomputations", "total cost(5)"],
        &rows,
    );
}

fn rate_information() {
    let scale = Scale::from_env();
    let traces = scale.universe();
    let n = *scale.query_counts.first().unwrap_or(&50);
    let queries = scale
        .workload()
        .portfolio_queries(n, &traces.initial_values());

    let mut rows = Vec::new();
    for (label, estimator) in [
        (
            "sampled-60s",
            RateEstimator::SampledAverage { interval_ticks: 60 },
        ),
        (
            "sampled-10s",
            RateEstimator::SampledAverage { interval_ticks: 10 },
        ),
        (
            "ewma-60s",
            RateEstimator::Ewma {
                interval_ticks: 60,
                alpha: 0.3,
            },
        ),
        ("unit (L1)", RateEstimator::Unit),
    ] {
        let mut cfg = SimConfig::new(traces.clone(), queries.clone());
        cfg.gp = scale.sim_gp_options();
        cfg.strategy = SimStrategy::PerQuery {
            strategy: AssignmentStrategy::DualDab { mu: 5.0 },
            heuristic: PqHeuristic::DifferentSum,
        };
        cfg.rate_estimator = estimator;
        cfg.delays = DelayConfig::zero();
        let m = run(&cfg).unwrap_or_else(|e| panic!("{label}: {e}"));
        rows.push(vec![
            label.to_string(),
            m.refreshes.to_string(),
            m.recomputations.to_string(),
            fmt(m.total_cost(5.0)),
        ]);
    }
    print_table(
        &format!("Ablation 3: value of rate information ({n} PPQs, dual-dab mu=5)"),
        &[
            "rate estimator",
            "refreshes",
            "recomputations",
            "total cost(5)",
        ],
        &rows,
    );
}
