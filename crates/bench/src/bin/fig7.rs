//! Fig. 7 (a–c): EQI vs AAO-T for a small set of PPQs.
//!
//! 10 portfolio queries (the joint AAO program is only practical for small
//! query sets); sweeps the recomputation cost mu = 1..10 and compares EQI
//! against periodic AAO with periods T in {30, 120, 600, 1500} seconds.
//! Reports refreshes (7a), recomputations (7b) and total cost (7c).
//!
//! Expected shape (paper): AAO-T's shared, less-stringent primary DABs
//! yield fewer refreshes but many more recomputations; AAO-30's total cost
//! is the worst (frequent recomputation hurts); EQI is comparable to the
//! best AAO-T, which is why EQI is the practical choice.

use pq_bench::{emit_sim_run, fmt, obs_from_env, print_table, Scale};
use pq_core::{AssignmentStrategy, PqHeuristic};
use pq_sim::{run_observed, DelayConfig, SimConfig, SimStrategy};

fn main() {
    let scale = Scale::from_env();
    let obs = obs_from_env();
    let traces = scale.universe();
    let n_queries = 10;
    let queries = scale
        .workload()
        .portfolio_queries(n_queries, &traces.initial_values());
    let mus = [1.0, 2.0, 5.0, 10.0];
    let periods = [30usize, 120, 600, 1500];

    let mut names = vec!["EQI".to_string()];
    names.extend(periods.iter().map(|t| format!("AAO-{t}")));

    let mut rows_refresh = Vec::new();
    let mut rows_recomp = Vec::new();
    let mut rows_cost = Vec::new();
    for &mu in &mus {
        let mut refresh = vec![fmt(mu)];
        let mut recomp = vec![fmt(mu)];
        let mut cost = vec![fmt(mu)];
        let strategies: Vec<(String, SimStrategy)> = std::iter::once((
            "EQI".to_string(),
            SimStrategy::PerQuery {
                strategy: AssignmentStrategy::DualDab { mu },
                heuristic: PqHeuristic::DifferentSum,
            },
        ))
        .chain(periods.iter().map(|&t| {
            (
                format!("AAO-{t}"),
                SimStrategy::AaoPeriodic {
                    period_ticks: t,
                    mu,
                },
            )
        }))
        .collect();
        for (name, strategy) in strategies {
            let mut cfg = SimConfig::new(traces.clone(), queries.clone());
            cfg.gp = scale.sim_gp_options();
            cfg.strategy = strategy;
            cfg.delays = DelayConfig::planetlab_like();
            cfg.mu_cost = mu;
            let started = std::time::Instant::now();
            let m = run_observed(&cfg, &obs).unwrap_or_else(|e| panic!("{name} mu={mu}: {e}"));
            emit_sim_run(
                &obs,
                "fig7",
                &format!("{name},mu={mu}"),
                n_queries,
                &m,
                started,
            );
            refresh.push(m.refreshes.to_string());
            recomp.push(m.recomputations.to_string());
            cost.push(fmt(m.total_cost(mu)));
        }
        rows_refresh.push(refresh);
        rows_recomp.push(recomp);
        rows_cost.push(cost);
    }

    let header: Vec<&str> = std::iter::once("mu")
        .chain(names.iter().map(String::as_str))
        .collect();
    print_table(
        &format!("Fig 7(a): refreshes, {n_queries} PPQs"),
        &header,
        &rows_refresh,
    );
    print_table(
        &format!("Fig 7(b): recomputations, {n_queries} PPQs"),
        &header,
        &rows_recomp,
    );
    print_table(
        &format!("Fig 7(c): total cost, {n_queries} PPQs"),
        &header,
        &rows_cost,
    );
    obs.flush();
}
