//! §V-B.1 "Effect of Varying Delays": node-to-node mean delay swept from
//! ~30 ms to 500 ms (and computational delays scaled 5x).
//!
//! Expected shape (paper): as delays increase there is a small increase in
//! loss of fidelity; refresh/recomputation counts barely move (the push
//! protocol's message economics are delay-independent; only staleness
//! windows grow).

use pq_bench::{emit_sim_run, fmt, obs_from_env, print_table, Scale};
use pq_core::{AssignmentStrategy, PqHeuristic};
use pq_sim::{run_observed, DelayConfig, Pareto, SimConfig, SimStrategy};

fn main() {
    let scale = Scale::from_env();
    let obs = obs_from_env();
    let traces = scale.universe();
    let n = *scale.query_counts.first().unwrap_or(&50);
    let queries = scale
        .workload()
        .portfolio_queries(n, &traces.initial_values());

    let mut rows = Vec::new();
    for (label, delays) in [
        ("zero", DelayConfig::zero()),
        ("30ms", DelayConfig::with_node_mean(0.030)),
        ("110ms", DelayConfig::with_node_mean(0.110)),
        ("250ms", DelayConfig::with_node_mean(0.250)),
        ("500ms", DelayConfig::with_node_mean(0.500)),
        (
            "110ms+5x-compute",
            DelayConfig {
                node_to_node: Pareto::with_mean(0.110),
                coordinator_check: Pareto::with_mean(0.020),
                user_push: Pareto::with_mean(0.005),
                recompute_service: Pareto::with_mean(0.050),
            },
        ),
    ] {
        let mut cfg = SimConfig::new(traces.clone(), queries.clone());
        cfg.gp = scale.sim_gp_options();
        cfg.strategy = SimStrategy::PerQuery {
            strategy: AssignmentStrategy::DualDab { mu: 5.0 },
            heuristic: PqHeuristic::DifferentSum,
        };
        cfg.delays = delays;
        let started = std::time::Instant::now();
        let m = run_observed(&cfg, &obs).unwrap_or_else(|e| panic!("{label}: {e}"));
        emit_sim_run(&obs, "delay_sweep", label, n, &m, started);
        rows.push(vec![
            label.to_string(),
            fmt(m.loss_in_fidelity_percent()),
            m.refreshes.to_string(),
            m.recomputations.to_string(),
        ]);
    }
    print_table(
        &format!("Delay sweep, {n} PPQs, dual-DAB(mu=5)"),
        &[
            "node-node delay",
            "fidelity loss %",
            "refreshes",
            "recomputations",
        ],
        &rows,
    );

    // Failure injection: message loss at PlanetLab-like delays
    // (an extension beyond the paper; the push protocol has no ACKs).
    let mut rows = Vec::new();
    for loss_p in [0.0, 0.01, 0.05, 0.10, 0.25] {
        let mut cfg = SimConfig::new(traces.clone(), queries.clone());
        cfg.gp = scale.sim_gp_options();
        cfg.strategy = SimStrategy::PerQuery {
            strategy: AssignmentStrategy::DualDab { mu: 5.0 },
            heuristic: PqHeuristic::DifferentSum,
        };
        cfg.delays = DelayConfig::planetlab_like();
        cfg.loss_probability = loss_p;
        let started = std::time::Instant::now();
        let m = run_observed(&cfg, &obs).unwrap_or_else(|e| panic!("loss {loss_p}: {e}"));
        emit_sim_run(&obs, "loss_sweep", &format!("p={loss_p}"), n, &m, started);
        rows.push(vec![
            format!("{:.0}%", loss_p * 100.0),
            fmt(m.loss_in_fidelity_percent()),
            m.lost_messages.to_string(),
            m.refreshes.to_string(),
        ]);
    }
    print_table(
        &format!("Message-loss sweep, {n} PPQs, dual-DAB(mu=5)"),
        &[
            "loss prob",
            "fidelity loss %",
            "lost messages",
            "refreshes arrived",
        ],
        &rows,
    );
    obs.flush();
}
