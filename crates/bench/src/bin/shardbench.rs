//! Sharded multi-coordinator scaling benchmark.
//!
//! Runs the fig5-style accuracy-bounded dissemination simulation over
//! the "large book" workload — many independent banded portfolios over
//! one big stock universe, the regime where the query↔item graph
//! partitions cleanly — and sweeps the shard count, comparing each
//! partitioned run against the single-coordinator baseline.
//!
//! Timing uses [`Execution::Sequential`]: each shard's engine runs to
//! completion on the calling thread and is timed in isolation, so
//! `max(busy)` is the critical path an ideally parallel run would
//! execute. This keeps the measurement meaningful on any host — on a
//! single-core CI runner a threaded sweep would show no wall-clock win
//! by construction, while the critical path is core-count-independent
//! (`host_cores` lands in the JSON for the record). The determinism
//! contract (DESIGN.md §13, `sharded_parity` tests) guarantees
//! `Execution::Threaded` produces identical simulated outcomes.
//!
//! `--enforce` requires, on the swept workload:
//!
//! * events/sec speedup ≥ 1.6x at 2 shards and ≥ 2.5x at 4 shards;
//! * fixed-seed metric parity at every shard count: fidelity samples,
//!   per-query violations, and every other metric except the
//!   per-coordinator `ingest_batches` artifact and wall clock.
//!
//! Usage: `shardbench [--quick] [--enforce] [--out PATH]`

use pq_bench::{fmt, print_table, Scale};
use pq_core::{AssignmentStrategy, PqHeuristic};
use pq_ddm::TraceSet;
use pq_obs::Obs;
use pq_sim::{
    run_sharded, DelayConfig, DelayRng, Execution, Pareto, ShardReport, SimConfig, SimMetrics,
    SimStrategy,
};
use pq_workload::{WorkloadConfig, WorkloadGen};

/// Events/sec speedup floors `--enforce` holds the sweep to.
const MIN_SPEEDUP_2: f64 = 1.6;
const MIN_SPEEDUP_4: f64 = 2.5;

struct Args {
    quick: bool,
    enforce: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        enforce: false,
        out: "BENCH_shard.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--enforce" => args.enforce = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: shardbench [--quick] [--enforce] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// The large book: `n_queries` banded portfolios (disjoint item bands,
/// so the partition is clean at any swept shard count) over an
/// `n_items`-item universe, fig5 dissemination strategy, per-item delay
/// streams and service-free delays — the regime the cross-K determinism
/// contract is defined over (DESIGN.md §13).
fn large_book(scale: &Scale, n_items: usize, n_queries: usize, n_ticks: usize) -> SimConfig {
    let traces = TraceSet::stock_universe(n_items, n_ticks, scale.seed);
    let mut gen = WorkloadGen::with_config(
        WorkloadConfig {
            n_items,
            legs: scale.legs.clone(),
            ..WorkloadConfig::default()
        },
        scale.seed ^ 0x517A_11AD,
    );
    let queries = gen.banded_portfolio_queries(n_queries, &traces.initial_values());
    let mut cfg = SimConfig::new(traces, queries);
    cfg.seed = scale.seed;
    cfg.gp = scale.sim_gp_options();
    cfg.strategy = SimStrategy::PerQuery {
        strategy: AssignmentStrategy::DualDab { mu: 5.0 },
        heuristic: PqHeuristic::DifferentSum,
    };
    cfg.mu_cost = 5.0;
    cfg.delay_rng = DelayRng::PerItem;
    let mut delays = DelayConfig::zero();
    delays.node_to_node = Pareto::with_mean(0.110);
    cfg.delays = delays;
    cfg.loss_probability = 0.02;
    cfg
}

/// Simulated events a run processed — identical across shard counts on
/// a clean partition, so events/sec ratios reduce to busy-time ratios.
fn events(m: &SimMetrics) -> u64 {
    m.refreshes + m.recomputations + m.user_notifications + m.dab_change_messages
}

/// The cross-shard-count invariant view of the metrics: everything but
/// the per-coordinator batching artifact and wall clock.
fn cross_k_view(m: &SimMetrics) -> SimMetrics {
    let mut m = m.clone();
    m.solver_seconds = 0.0;
    m.ingest_batches = 0;
    m
}

struct Measurement {
    shards: usize,
    report: ShardReport,
    parity: bool,
    fig5_parity: bool,
    speedup: f64,
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_env();
    let (n_items, n_queries, n_ticks, shard_counts): (usize, usize, usize, &[usize]) = if args.quick
    {
        (100_000, 800, 96, &[1, 2, 4])
    } else {
        (1_000_000, 4_000, 160, &[1, 2, 4, 8])
    };
    let base = large_book(&scale, n_items, n_queries, n_ticks);
    eprintln!(
        "shardbench: {n_items} items, {n_queries} queries, {n_ticks} ticks, \
         sweeping shards {shard_counts:?}"
    );

    let mut baseline: Option<ShardReport> = None;
    let measurements: Vec<Measurement> = shard_counts
        .iter()
        .map(|&k| {
            let mut cfg = base.clone();
            cfg.shards = k;
            let obs = Obs::null();
            let report = run_sharded(&cfg, &obs, Execution::Sequential)
                .unwrap_or_else(|e| panic!("sharded run failed at k = {k}: {e}"));
            assert_eq!(
                report.execution,
                Execution::Sequential,
                "the banded workload must partition cleanly at k = {k}"
            );
            let (parity, fig5_parity, speedup) = match &baseline {
                None => (true, true, 1.0),
                Some(b) => (
                    cross_k_view(&b.metrics) == cross_k_view(&report.metrics),
                    b.metrics.fidelity_samples == report.metrics.fidelity_samples
                        && b.metrics.per_query_violations == report.metrics.per_query_violations,
                    b.max_busy_seconds() / report.max_busy_seconds(),
                ),
            };
            if baseline.is_none() {
                baseline = Some(report.clone());
            }
            eprintln!(
                "shardbench: k = {k} done in {:.2} s critical path (speedup {speedup:.2}x)",
                report.max_busy_seconds()
            );
            Measurement {
                shards: k,
                report,
                parity,
                fig5_parity,
                speedup,
            }
        })
        .collect();

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            let ev = events(&m.report.metrics);
            let max_busy = m.report.max_busy_seconds();
            let sum_busy: f64 = m.report.shards.iter().map(|s| s.busy_seconds).sum();
            vec![
                m.shards.to_string(),
                ev.to_string(),
                format!("{max_busy:.3}"),
                format!("{sum_busy:.3}"),
                fmt(ev as f64 / max_busy),
                fmt(m.speedup),
                m.report.cross_edges.to_string(),
                (m.parity && m.fig5_parity).to_string(),
            ]
        })
        .collect();
    print_table(
        "shardbench: multi-coordinator scaling (critical path)",
        &[
            "shards",
            "events",
            "max_busy_s",
            "sum_busy_s",
            "events_per_sec",
            "speedup",
            "cross_edges",
            "parity",
        ],
        &rows,
    );

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep_json = |m: &Measurement| {
        let ev = events(&m.report.metrics);
        let max_busy = m.report.max_busy_seconds();
        let sum_busy: f64 = m.report.shards.iter().map(|s| s.busy_seconds).sum();
        format!(
            "    {{\n      \"shards\": {},\n      \"events\": {},\n      \
             \"max_busy_seconds\": {:.4},\n      \"sum_busy_seconds\": {:.4},\n      \
             \"events_per_sec\": {:.0},\n      \"speedup\": {:.3},\n      \
             \"cross_edges\": {},\n      \"n_components\": {},\n      \
             \"fidelity_samples\": {},\n      \"refreshes\": {},\n      \
             \"recomputations\": {},\n      \"lost_messages\": {},\n      \
             \"parity\": {},\n      \"fig5_parity\": {}\n    }}",
            m.shards,
            ev,
            max_busy,
            sum_busy,
            ev as f64 / max_busy,
            m.speedup,
            m.report.cross_edges,
            m.report.n_components,
            m.report.metrics.fidelity_samples,
            m.report.metrics.refreshes,
            m.report.metrics.recomputations,
            m.report.metrics.lost_messages,
            m.parity,
            m.fig5_parity,
        )
    };
    let json = format!(
        "{{\n  \"quick\": {},\n  \"host_cores\": {host_cores},\n  \
         \"timing\": \"sequential critical path (max per-shard busy seconds)\",\n  \
         \"workload\": {{\n    \"n_items\": {n_items},\n    \"n_queries\": {n_queries},\n    \
         \"n_ticks\": {n_ticks},\n    \"seed\": {}\n  }},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        args.quick,
        scale.seed,
        measurements
            .iter()
            .map(sweep_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write(&args.out, json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);

    if args.enforce {
        let mut failed = false;
        for m in &measurements {
            if !(m.parity && m.fig5_parity) {
                eprintln!(
                    "FAIL: fixed-seed metrics at {} shards diverge from the \
                     single-coordinator baseline",
                    m.shards
                );
                failed = true;
            }
            let floor = match m.shards {
                2 => Some(MIN_SPEEDUP_2),
                4 => Some(MIN_SPEEDUP_4),
                _ => None,
            };
            if let Some(floor) = floor {
                if m.speedup < floor {
                    eprintln!(
                        "FAIL: speedup {:.2}x at {} shards below the {floor}x floor",
                        m.speedup, m.shards
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("enforce: shard-count sweep speedups and fixed-seed parity pass");
    }
}
