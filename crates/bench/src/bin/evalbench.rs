//! Naive vs compiled vs delta vs shared query-evaluation microbenchmark.
//!
//! Measures the coordinator's per-tick fidelity-sampling cost — reading
//! every query's current value after a handful of item moves — under
//! four evaluation regimes:
//!
//! * **naive ns/sample** — [`pq_poly::PolynomialQuery::eval`] walks the
//!   term list of every query on every sample;
//! * **compiled ns/sample** — [`pq_poly::EvalPlan::eval`] over the same
//!   queries: flat storage, unrolled degree-1/2 kernels, no `powi`;
//! * **delta ns/sample** — a [`pq_sim::DeltaView`] folds each item move
//!   into the affected queries via the plans' inverted item → term
//!   index (with the engine's periodic rebase), so a sample is an O(1)
//!   read;
//! * **shared ns/sample** — a [`pq_sim::SharedView`] over one
//!   cross-query [`pq_poly::SharedPlan`]: CSE-deduplicated monomials,
//!   each item move evaluates every affected distinct monomial once and
//!   scatters `c_q · Δm` through the CSR term → query index.
//!
//! Two fixed workloads (the fig5-style portfolio mix and a large
//! synthetic book) plus an **overlapping-book sweep** at 1k→8k queries
//! (`pq_workload::WorkloadGen::overlapping_book` with the distinct-pair
//! pool held fixed, so the book shares ever harder as it grows). Per
//! sweep point the benchmark reports delta vs shared **ns/refresh**
//! (pure maintenance cost per applied item move), the distinct-monomial
//! count, and plan memory — `SharedPlan::bytes()` against the summed
//! per-query `EvalPlan::bytes()` — all emitted into `BENCH_eval.json`
//! so memory sublinearity is tracked alongside speed.
//!
//! `--enforce` additionally replays a fixed-seed fig5-style simulation
//! under [`pq_sim::EvalMode::Naive`], [`pq_sim::EvalMode::Delta`] and
//! [`pq_sim::EvalMode::Shared`] and requires byte-identical per-query
//! violation counts — no evaluation path may flip a QAB comparison —
//! plus a 5x delta speedup floor on the large workload, a 2x
//! shared-over-delta ns/refresh floor at 8k overlapping queries, and
//! sublinear shared memory growth (marginal bytes/query at most half
//! the per-query plans' slope, and falling bytes/query at scale).
//!
//! Usage: `evalbench [--quick] [--enforce] [--out PATH]`

use std::hint::black_box;
use std::time::Instant;

use pq_bench::{fmt, print_table, Scale};
use pq_core::{AssignmentStrategy, PqHeuristic};
use pq_ddm::TraceSet;
use pq_poly::{EvalPlan, ItemId, PolynomialQuery, SharedPlan};
use pq_sim::{run, DelayConfig, DeltaView, EvalMode, SharedView, SimConfig, SimStrategy};
use pq_workload::{WorkloadConfig, WorkloadGen};

/// Speedup floor `--enforce` holds the delta path to on the large
/// workload.
const MIN_DELTA_SPEEDUP: f64 = 5.0;
/// Shared-over-delta ns/refresh floor at the top of the overlapping
/// sweep.
const MIN_SHARED_SPEEDUP: f64 = 2.0;
/// Memory-growth ceiling: shared marginal bytes per added query over
/// the 1k→8k sweep must stay below this fraction of the per-query
/// plans' marginal bytes.
const MAX_SHARED_MEM_SLOPE: f64 = 0.5;
/// Rebase cadence used by the delta pass (the engine default).
const REBASE_EVERY: usize = EvalMode::DEFAULT_REBASE_EVERY;

struct Args {
    quick: bool,
    enforce: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        enforce: false,
        out: "BENCH_eval.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--enforce" => args.enforce = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: evalbench [--quick] [--enforce] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Deterministic value stream: tick `t` moves `MOVES_PER_TICK` items by
/// a few tenths of a percent. Plain splitmix-style hash — no shared RNG.
fn hash2(a: u64, b: u64) -> u64 {
    let mut s = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s ^= s >> 31;
    s
}

const MOVES_PER_TICK: usize = 4;

/// The items that move on tick `t` and their new values.
fn moves_at(tick: usize, values: &[f64], out: &mut Vec<(usize, f64)>) {
    out.clear();
    for k in 0..MOVES_PER_TICK {
        let h = hash2(tick as u64, k as u64);
        let item = (h % values.len() as u64) as usize;
        let u = (hash2(h, 0xA5) % 10_000) as f64 / 5_000.0 - 1.0;
        out.push((item, values[item] * (1.0 + 0.003 * u)));
    }
}

struct Measurement {
    naive_ns: f64,
    compiled_ns: f64,
    delta_ns: f64,
    shared_ns: f64,
    samples: u64,
    delta_updates: u64,
    scatter_updates: u64,
    distinct_terms: usize,
    shared_bytes: usize,
    per_query_bytes: usize,
}

/// Runs all four regimes over the same `ticks`-long move stream,
/// sampling every query once per tick.
fn bench_workload(queries: &[PolynomialQuery], values0: &[f64], ticks: usize) -> Measurement {
    let plans: Vec<EvalPlan> = queries
        .iter()
        .map(|q| EvalPlan::compile(q.poly()))
        .collect();
    // item -> queries containing it, mirroring the engine's index.
    let item_queries: Vec<Vec<u32>> = (0..values0.len())
        .map(|i| {
            (0..plans.len() as u32)
                .filter(|&qi| plans[qi as usize].delta_cost(ItemId(i as u32)) > 0)
                .collect()
        })
        .collect();
    let n_samples = (ticks * queries.len()) as u64;
    let mut moved = Vec::with_capacity(MOVES_PER_TICK);

    // Naive: full term-list walk per sample.
    let mut values = values0.to_vec();
    let started = Instant::now();
    for tick in 0..ticks {
        moves_at(tick, &values, &mut moved);
        for &(item, v) in &moved {
            values[item] = v;
        }
        for q in queries {
            black_box(q.eval(&values));
        }
    }
    let naive_ns = started.elapsed().as_nanos() as f64 / n_samples as f64;

    // Compiled: full evaluation through the plans.
    let mut values = values0.to_vec();
    let started = Instant::now();
    for tick in 0..ticks {
        moves_at(tick, &values, &mut moved);
        for &(item, v) in &moved {
            values[item] = v;
        }
        for plan in &plans {
            black_box(plan.eval(&values));
        }
    }
    let compiled_ns = started.elapsed().as_nanos() as f64 / n_samples as f64;

    // Delta: fold moves into a DeltaView, sample by reading the view.
    let mut values = values0.to_vec();
    let mut view = DeltaView::new(&plans, &values);
    let mut delta_updates = 0u64;
    let started = Instant::now();
    for tick in 0..ticks {
        moves_at(tick, &values, &mut moved);
        for &(item, v) in &moved {
            let old = values[item];
            delta_updates += view.apply(&plans, &item_queries[item], &values, item, old, v);
            values[item] = v;
        }
        if (tick + 1) % REBASE_EVERY == 0 {
            view.rebase(&plans, &values);
        }
        for qi in 0..plans.len() {
            black_box(view.value(qi));
        }
    }
    let delta_ns = started.elapsed().as_nanos() as f64 / n_samples as f64;

    // Shared: one cross-query plan; each move evaluates every affected
    // distinct monomial once and scatters through the CSR sub index.
    let shared = SharedPlan::compile(queries.iter().map(|q| q.poly()));
    let mut values = values0.to_vec();
    let mut view = SharedView::new(&shared, &values);
    let mut scatter_updates = 0u64;
    let started = Instant::now();
    for tick in 0..ticks {
        moves_at(tick, &values, &mut moved);
        for &(item, v) in &moved {
            let old = values[item];
            scatter_updates += view.apply(&shared, &values, item, old, v);
            values[item] = v;
        }
        if (tick + 1) % REBASE_EVERY == 0 {
            view.rebase(&shared, &values);
        }
        for qi in 0..queries.len() {
            black_box(view.value(qi));
        }
    }
    let shared_ns = started.elapsed().as_nanos() as f64 / n_samples as f64;

    Measurement {
        naive_ns,
        compiled_ns,
        delta_ns,
        shared_ns,
        samples: n_samples,
        delta_updates,
        scatter_updates,
        distinct_terms: shared.n_terms(),
        shared_bytes: shared.bytes(),
        per_query_bytes: plans.iter().map(|p| p.bytes()).sum(),
    }
}

/// One point of the overlapping-book sweep: pure maintenance cost per
/// applied item move (ns/refresh) for the per-query delta path vs the
/// shared scatter path, plus the memory story.
struct SweepPoint {
    n_queries: usize,
    distinct_terms: usize,
    shared_fanout: usize,
    delta_ns_refresh: f64,
    shared_ns_refresh: f64,
    shared_bytes: usize,
    per_query_bytes: usize,
}

/// Item universe of the overlapping-book sweep.
const SWEEP_ITEMS: usize = 400;
/// Mean legs per query in the sweep (`legs = 6..=7`).
const SWEEP_MEAN_LEGS: f64 = 6.5;
/// Distinct-pair pool target, held fixed across the sweep so the book
/// shares ever harder as it grows — the regime the shared plan exists
/// for (many subscriptions over one bounded monomial universe).
const SWEEP_POOL: f64 = 2_000.0;

/// The overlap factor that pins `overlapping_book`'s distinct-pair pool
/// at [`SWEEP_POOL`] for an `n`-query book.
fn overlap_for(n: usize) -> f64 {
    (1.0 - SWEEP_POOL / (n as f64 * SWEEP_MEAN_LEGS)).max(0.0)
}

/// Times only the maintenance work — move application plus periodic
/// rebase, no per-tick sampling — so ns/refresh isolates the cost the
/// `Shared` mode claims to shrink.
fn bench_overlap_point(seed: u64, n_queries: usize, ticks: usize) -> SweepPoint {
    let values0 = TraceSet::stock_universe(SWEEP_ITEMS, 2, seed).initial_values();
    let queries = WorkloadGen::with_config(
        WorkloadConfig {
            n_items: SWEEP_ITEMS,
            legs: 6..=7,
            ..WorkloadConfig::default()
        },
        seed ^ n_queries as u64,
    )
    .overlapping_book(n_queries, overlap_for(n_queries), &values0);

    let plans: Vec<EvalPlan> = queries
        .iter()
        .map(|q| EvalPlan::compile(q.poly()))
        .collect();
    let item_queries: Vec<Vec<u32>> = (0..values0.len())
        .map(|i| {
            (0..plans.len() as u32)
                .filter(|&qi| plans[qi as usize].delta_cost(ItemId(i as u32)) > 0)
                .collect()
        })
        .collect();
    let shared = SharedPlan::compile(queries.iter().map(|q| q.poly()));
    let n_moves = (ticks * MOVES_PER_TICK) as f64;
    let mut moved = Vec::with_capacity(MOVES_PER_TICK);

    // Per-query delta maintenance.
    let mut values = values0.clone();
    let mut view = DeltaView::new(&plans, &values);
    let started = Instant::now();
    for tick in 0..ticks {
        moves_at(tick, &values, &mut moved);
        for &(item, v) in &moved {
            let old = values[item];
            view.apply(&plans, &item_queries[item], &values, item, old, v);
            values[item] = v;
        }
        if (tick + 1) % REBASE_EVERY == 0 {
            view.rebase(&plans, &values);
        }
    }
    black_box(view.values());
    let delta_ns_refresh = started.elapsed().as_nanos() as f64 / n_moves;

    // Shared scatter maintenance over the same move stream.
    let mut values = values0.clone();
    let mut view = SharedView::new(&shared, &values);
    let started = Instant::now();
    for tick in 0..ticks {
        moves_at(tick, &values, &mut moved);
        for &(item, v) in &moved {
            let old = values[item];
            view.apply(&shared, &values, item, old, v);
            values[item] = v;
        }
        if (tick + 1) % REBASE_EVERY == 0 {
            view.rebase(&shared, &values);
        }
    }
    black_box(view.values());
    let shared_ns_refresh = started.elapsed().as_nanos() as f64 / n_moves;

    SweepPoint {
        n_queries,
        distinct_terms: shared.n_terms(),
        shared_fanout: shared.scatter_fanout(),
        delta_ns_refresh,
        shared_ns_refresh,
        shared_bytes: shared.bytes(),
        per_query_bytes: plans.iter().map(|p| p.bytes()).sum(),
    }
}

/// Fig5-style simulation config with a selectable evaluation mode.
fn fig5_config(scale: &Scale, n_queries: usize, eval: EvalMode) -> SimConfig {
    let traces = scale.universe();
    let queries = scale
        .workload()
        .portfolio_queries(n_queries, &traces.initial_values());
    let mut cfg = SimConfig::new(traces, queries);
    cfg.gp = scale.sim_gp_options();
    cfg.strategy = SimStrategy::PerQuery {
        strategy: AssignmentStrategy::DualDab { mu: 5.0 },
        heuristic: PqHeuristic::DifferentSum,
    };
    cfg.delays = DelayConfig::planetlab_like();
    cfg.mu_cost = 5.0;
    cfg.eval = eval;
    cfg
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_env();
    let ticks = if args.quick { 2_000 } else { 10_000 };
    let traces = scale.universe();
    let values0 = traces.initial_values();

    let n_fig5 = if args.quick { 50 } else { 200 };
    let fig5_queries = scale.workload().portfolio_queries(n_fig5, &values0);

    // The large synthetic book: a universe several times the fig5 scale
    // with paper-sized queries (6-7 legs, 12-14 items). Per-tick churn
    // touches a small fraction of the book, the regime delta maintenance
    // is built for.
    let n_large = if args.quick { 600 } else { 1_000 };
    let large_items = if args.quick { 400 } else { 500 };
    let large_values = TraceSet::stock_universe(large_items, 2, scale.seed).initial_values();
    let large_queries = WorkloadGen::with_config(
        WorkloadConfig {
            n_items: large_items,
            legs: 6..=7,
            ..WorkloadConfig::default()
        },
        scale.seed ^ 0xE7A1,
    )
    .portfolio_queries(n_large, &large_values);

    let m_fig5 = bench_workload(&fig5_queries, &values0, ticks);
    let m_large = bench_workload(&large_queries, &large_values, ticks);

    // Overlapping-book sweep: 1k → 8k queries over a fixed distinct-pair
    // pool. The enforce gates (shared ≥2x delta ns/refresh, sublinear
    // shared memory) read the 1k and 8k endpoints, so the sweep keeps
    // its full range even under --quick; only the tick count shrinks.
    let sweep_ticks = if args.quick { 1_200 } else { 4_000 };
    let sweep: Vec<SweepPoint> = [1_000usize, 2_000, 4_000, 8_000]
        .iter()
        .map(|&n| bench_overlap_point(scale.seed ^ 0x5EED, n, sweep_ticks))
        .collect();

    // Fig5 parity: identical seed, naive vs delta vs shared evaluation.
    // Everything but wall-clock solver time must agree; the enforce gate
    // pins the per-query violation counts byte-for-byte.
    let n_parity = if args.quick { 10 } else { 32 };
    let parity_naive = run(&fig5_config(&scale, n_parity, EvalMode::Naive)).expect("naive run");
    let parity_delta = run(&fig5_config(
        &scale,
        n_parity,
        EvalMode::Delta {
            rebase_every: REBASE_EVERY,
        },
    ))
    .expect("delta run");
    let parity_shared = run(&fig5_config(
        &scale,
        n_parity,
        EvalMode::Shared {
            rebase_every: REBASE_EVERY,
        },
    ))
    .expect("shared run");
    let violations_match = parity_naive.per_query_violations == parity_delta.per_query_violations;
    let notifications_match = parity_naive.user_notifications == parity_delta.user_notifications;
    let shared_violations_match =
        parity_naive.per_query_violations == parity_shared.per_query_violations;
    let shared_notifications_match =
        parity_naive.user_notifications == parity_shared.user_notifications;

    let row = |name: &str, m: &Measurement, n_queries: usize| {
        vec![
            name.to_string(),
            n_queries.to_string(),
            format!("{:.1}", m.naive_ns),
            format!("{:.1}", m.compiled_ns),
            format!("{:.1}", m.delta_ns),
            format!("{:.1}", m.shared_ns),
            fmt(m.naive_ns / m.compiled_ns),
            fmt(m.naive_ns / m.delta_ns),
            m.distinct_terms.to_string(),
        ]
    };
    print_table(
        "evalbench: fidelity-sampling cost (ns/sample)",
        &[
            "workload",
            "queries",
            "naive",
            "compiled",
            "delta",
            "shared",
            "compiled_x",
            "delta_x",
            "terms",
        ],
        &[
            row("fig5", &m_fig5, n_fig5),
            row("large", &m_large, n_large),
        ],
    );
    print_table(
        "evalbench: overlapping-book sweep (ns/refresh, bytes/query)",
        &[
            "queries",
            "terms",
            "fanout",
            "delta_ns",
            "shared_ns",
            "shared_x",
            "shared_B/q",
            "perquery_B/q",
        ],
        &sweep
            .iter()
            .map(|p| {
                vec![
                    p.n_queries.to_string(),
                    p.distinct_terms.to_string(),
                    p.shared_fanout.to_string(),
                    format!("{:.0}", p.delta_ns_refresh),
                    format!("{:.0}", p.shared_ns_refresh),
                    fmt(p.delta_ns_refresh / p.shared_ns_refresh),
                    format!("{:.0}", p.shared_bytes as f64 / p.n_queries as f64),
                    format!("{:.0}", p.per_query_bytes as f64 / p.n_queries as f64),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nfig5 parity (n={n_parity}): violations {} notifications {} \
         shared_violations {} shared_notifications {}",
        if violations_match { "match" } else { "DIFFER" },
        if notifications_match {
            "match"
        } else {
            "DIFFER"
        },
        if shared_violations_match {
            "match"
        } else {
            "DIFFER"
        },
        if shared_notifications_match {
            "match"
        } else {
            "DIFFER"
        },
    );

    let wl_json = |name: &str, m: &Measurement, n_queries: usize| {
        format!(
            "  \"{name}\": {{\n    \"n_queries\": {n_queries},\n    \
             \"ticks\": {ticks},\n    \"samples\": {},\n    \
             \"naive_ns_per_sample\": {:.2},\n    \
             \"compiled_ns_per_sample\": {:.2},\n    \
             \"delta_ns_per_sample\": {:.2},\n    \
             \"shared_ns_per_sample\": {:.2},\n    \
             \"compiled_speedup\": {:.3},\n    \"delta_speedup\": {:.3},\n    \
             \"delta_updates\": {},\n    \"scatter_updates\": {},\n    \
             \"distinct_terms\": {},\n    \"shared_bytes\": {},\n    \
             \"per_query_bytes\": {}\n  }}",
            m.samples,
            m.naive_ns,
            m.compiled_ns,
            m.delta_ns,
            m.shared_ns,
            m.naive_ns / m.compiled_ns,
            m.naive_ns / m.delta_ns,
            m.delta_updates,
            m.scatter_updates,
            m.distinct_terms,
            m.shared_bytes,
            m.per_query_bytes,
        )
    };
    let sweep_json = sweep
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"n_queries\": {},\n      \
                 \"distinct_terms\": {},\n      \"scatter_fanout\": {},\n      \
                 \"delta_ns_per_refresh\": {:.2},\n      \
                 \"shared_ns_per_refresh\": {:.2},\n      \
                 \"shared_speedup\": {:.3},\n      \
                 \"shared_bytes\": {},\n      \"per_query_bytes\": {},\n      \
                 \"shared_bytes_per_query\": {:.1},\n      \
                 \"per_query_bytes_per_query\": {:.1}\n    }}",
                p.n_queries,
                p.distinct_terms,
                p.shared_fanout,
                p.delta_ns_refresh,
                p.shared_ns_refresh,
                p.delta_ns_refresh / p.shared_ns_refresh,
                p.shared_bytes,
                p.per_query_bytes,
                p.shared_bytes as f64 / p.n_queries as f64,
                p.per_query_bytes as f64 / p.n_queries as f64,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"quick\": {},\n  \"rebase_every\": {REBASE_EVERY},\n\
         {},\n{},\n  \"overlap_sweep\": [\n{sweep_json}\n  ],\n  \
         \"fig5_parity\": {{\n    \"n_queries\": {n_parity},\n    \
         \"violations_match\": {violations_match},\n    \
         \"notifications_match\": {notifications_match},\n    \
         \"shared_violations_match\": {shared_violations_match},\n    \
         \"shared_notifications_match\": {shared_notifications_match}\n  }}\n}}\n",
        args.quick,
        wl_json("fig5", &m_fig5, n_fig5),
        wl_json("large", &m_large, n_large),
    );
    std::fs::write(&args.out, json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);

    if args.enforce {
        let mut failed = false;
        let delta_speedup = m_large.naive_ns / m_large.delta_ns;
        if delta_speedup < MIN_DELTA_SPEEDUP {
            eprintln!(
                "FAIL: delta speedup {delta_speedup:.2}x on the large workload \
                 below the {MIN_DELTA_SPEEDUP}x floor"
            );
            failed = true;
        }
        let (lo, hi) = (&sweep[0], &sweep[sweep.len() - 1]);
        let shared_speedup = hi.delta_ns_refresh / hi.shared_ns_refresh;
        if shared_speedup < MIN_SHARED_SPEEDUP {
            eprintln!(
                "FAIL: shared ns/refresh speedup {shared_speedup:.2}x at {} queries \
                 below the {MIN_SHARED_SPEEDUP}x floor",
                hi.n_queries
            );
            failed = true;
        }
        // Sublinear memory: the shared plan's marginal bytes per added
        // query over 1k→8k must stay below half the per-query plans'
        // slope, and bytes/query must fall as the book grows.
        let shared_slope =
            (hi.shared_bytes - lo.shared_bytes) as f64 / (hi.n_queries - lo.n_queries) as f64;
        let per_query_slope =
            (hi.per_query_bytes - lo.per_query_bytes) as f64 / (hi.n_queries - lo.n_queries) as f64;
        let slope_ratio = shared_slope / per_query_slope;
        if slope_ratio > MAX_SHARED_MEM_SLOPE {
            eprintln!(
                "FAIL: shared memory slope {shared_slope:.1} B/query is \
                 {slope_ratio:.2}x the per-query slope {per_query_slope:.1} B/query \
                 (ceiling {MAX_SHARED_MEM_SLOPE})"
            );
            failed = true;
        }
        let bpq_lo = lo.shared_bytes as f64 / lo.n_queries as f64;
        let bpq_hi = hi.shared_bytes as f64 / hi.n_queries as f64;
        if bpq_hi >= bpq_lo {
            eprintln!(
                "FAIL: shared bytes/query grew from {bpq_lo:.1} at {} queries \
                 to {bpq_hi:.1} at {} — memory is not sublinear in query count",
                lo.n_queries, hi.n_queries
            );
            failed = true;
        }
        if !violations_match {
            eprintln!(
                "FAIL: per-query violation counts differ between naive and delta \
                 evaluation:\n  naive {:?}\n  delta {:?}",
                parity_naive.per_query_violations, parity_delta.per_query_violations
            );
            failed = true;
        }
        if !notifications_match {
            eprintln!(
                "FAIL: user notifications differ between naive ({}) and delta ({})",
                parity_naive.user_notifications, parity_delta.user_notifications
            );
            failed = true;
        }
        if !shared_violations_match {
            eprintln!(
                "FAIL: per-query violation counts differ between naive and shared \
                 evaluation:\n  naive {:?}\n  shared {:?}",
                parity_naive.per_query_violations, parity_shared.per_query_violations
            );
            failed = true;
        }
        if !shared_notifications_match {
            eprintln!(
                "FAIL: user notifications differ between naive ({}) and shared ({})",
                parity_naive.user_notifications, parity_shared.user_notifications
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "enforce: delta speedup {delta_speedup:.2}x, shared speedup \
             {shared_speedup:.2}x at {} queries, memory slope ratio \
             {slope_ratio:.2} (bytes/query {bpq_lo:.0} -> {bpq_hi:.0}), \
             and fig5 parity (incl. shared) pass",
            hi.n_queries
        );
    }
}
