//! Naive vs compiled vs delta query-evaluation microbenchmark.
//!
//! Measures the coordinator's per-tick fidelity-sampling cost — reading
//! every query's current value after a handful of item moves — under
//! three evaluation regimes:
//!
//! * **naive ns/sample** — [`pq_poly::PolynomialQuery::eval`] walks the
//!   term list of every query on every sample;
//! * **compiled ns/sample** — [`pq_poly::EvalPlan::eval`] over the same
//!   queries: flat storage, unrolled degree-1/2 kernels, no `powi`;
//! * **delta ns/sample** — a [`pq_sim::DeltaView`] folds each item move
//!   into the affected queries via the plans' inverted item → term
//!   index (with the engine's periodic rebase), so a sample is an O(1)
//!   read.
//!
//! Two workloads, written to `BENCH_eval.json`: the fig5-style portfolio
//! mix and a large synthetic portfolio book (paper-sized 6-7-leg queries
//! over a universe several times the fig5 scale) where per-tick churn
//! touches a small fraction of the book and delta maintenance dominates.
//!
//! `--enforce` additionally replays a fixed-seed fig5-style simulation
//! under [`pq_sim::EvalMode::Naive`] and [`pq_sim::EvalMode::Delta`] and
//! requires byte-identical per-query violation counts — the compiled
//! and delta paths must never flip a QAB comparison — plus a 5x delta
//! speedup floor on the large workload.
//!
//! Usage: `evalbench [--quick] [--enforce] [--out PATH]`

use std::hint::black_box;
use std::time::Instant;

use pq_bench::{fmt, print_table, Scale};
use pq_core::{AssignmentStrategy, PqHeuristic};
use pq_ddm::TraceSet;
use pq_poly::{EvalPlan, ItemId, PolynomialQuery};
use pq_sim::{run, DelayConfig, DeltaView, EvalMode, SimConfig, SimStrategy};
use pq_workload::{WorkloadConfig, WorkloadGen};

/// Speedup floor `--enforce` holds the delta path to on the large
/// workload.
const MIN_DELTA_SPEEDUP: f64 = 5.0;
/// Rebase cadence used by the delta pass (the engine default).
const REBASE_EVERY: usize = EvalMode::DEFAULT_REBASE_EVERY;

struct Args {
    quick: bool,
    enforce: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        enforce: false,
        out: "BENCH_eval.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--enforce" => args.enforce = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: evalbench [--quick] [--enforce] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Deterministic value stream: tick `t` moves `MOVES_PER_TICK` items by
/// a few tenths of a percent. Plain splitmix-style hash — no shared RNG.
fn hash2(a: u64, b: u64) -> u64 {
    let mut s = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s ^= s >> 31;
    s
}

const MOVES_PER_TICK: usize = 4;

/// The items that move on tick `t` and their new values.
fn moves_at(tick: usize, values: &[f64], out: &mut Vec<(usize, f64)>) {
    out.clear();
    for k in 0..MOVES_PER_TICK {
        let h = hash2(tick as u64, k as u64);
        let item = (h % values.len() as u64) as usize;
        let u = (hash2(h, 0xA5) % 10_000) as f64 / 5_000.0 - 1.0;
        out.push((item, values[item] * (1.0 + 0.003 * u)));
    }
}

struct Measurement {
    naive_ns: f64,
    compiled_ns: f64,
    delta_ns: f64,
    samples: u64,
    delta_updates: u64,
}

/// Runs all three regimes over the same `ticks`-long move stream,
/// sampling every query once per tick.
fn bench_workload(queries: &[PolynomialQuery], values0: &[f64], ticks: usize) -> Measurement {
    let plans: Vec<EvalPlan> = queries
        .iter()
        .map(|q| EvalPlan::compile(q.poly()))
        .collect();
    // item -> queries containing it, mirroring the engine's index.
    let item_queries: Vec<Vec<u32>> = (0..values0.len())
        .map(|i| {
            (0..plans.len() as u32)
                .filter(|&qi| plans[qi as usize].delta_cost(ItemId(i as u32)) > 0)
                .collect()
        })
        .collect();
    let n_samples = (ticks * queries.len()) as u64;
    let mut moved = Vec::with_capacity(MOVES_PER_TICK);

    // Naive: full term-list walk per sample.
    let mut values = values0.to_vec();
    let started = Instant::now();
    for tick in 0..ticks {
        moves_at(tick, &values, &mut moved);
        for &(item, v) in &moved {
            values[item] = v;
        }
        for q in queries {
            black_box(q.eval(&values));
        }
    }
    let naive_ns = started.elapsed().as_nanos() as f64 / n_samples as f64;

    // Compiled: full evaluation through the plans.
    let mut values = values0.to_vec();
    let started = Instant::now();
    for tick in 0..ticks {
        moves_at(tick, &values, &mut moved);
        for &(item, v) in &moved {
            values[item] = v;
        }
        for plan in &plans {
            black_box(plan.eval(&values));
        }
    }
    let compiled_ns = started.elapsed().as_nanos() as f64 / n_samples as f64;

    // Delta: fold moves into a DeltaView, sample by reading the view.
    let mut values = values0.to_vec();
    let mut view = DeltaView::new(&plans, &values);
    let mut delta_updates = 0u64;
    let started = Instant::now();
    for tick in 0..ticks {
        moves_at(tick, &values, &mut moved);
        for &(item, v) in &moved {
            let old = values[item];
            delta_updates += view.apply(&plans, &item_queries[item], &values, item, old, v);
            values[item] = v;
        }
        if (tick + 1) % REBASE_EVERY == 0 {
            view.rebase(&plans, &values);
        }
        for qi in 0..plans.len() {
            black_box(view.value(qi));
        }
    }
    let delta_ns = started.elapsed().as_nanos() as f64 / n_samples as f64;

    Measurement {
        naive_ns,
        compiled_ns,
        delta_ns,
        samples: n_samples,
        delta_updates,
    }
}

/// Fig5-style simulation config with a selectable evaluation mode.
fn fig5_config(scale: &Scale, n_queries: usize, eval: EvalMode) -> SimConfig {
    let traces = scale.universe();
    let queries = scale
        .workload()
        .portfolio_queries(n_queries, &traces.initial_values());
    let mut cfg = SimConfig::new(traces, queries);
    cfg.gp = scale.sim_gp_options();
    cfg.strategy = SimStrategy::PerQuery {
        strategy: AssignmentStrategy::DualDab { mu: 5.0 },
        heuristic: PqHeuristic::DifferentSum,
    };
    cfg.delays = DelayConfig::planetlab_like();
    cfg.mu_cost = 5.0;
    cfg.eval = eval;
    cfg
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_env();
    let ticks = if args.quick { 2_000 } else { 10_000 };
    let traces = scale.universe();
    let values0 = traces.initial_values();

    let n_fig5 = if args.quick { 50 } else { 200 };
    let fig5_queries = scale.workload().portfolio_queries(n_fig5, &values0);

    // The large synthetic book: a universe several times the fig5 scale
    // with paper-sized queries (6-7 legs, 12-14 items). Per-tick churn
    // touches a small fraction of the book, the regime delta maintenance
    // is built for.
    let n_large = if args.quick { 600 } else { 1_000 };
    let large_items = if args.quick { 400 } else { 500 };
    let large_values = TraceSet::stock_universe(large_items, 2, scale.seed).initial_values();
    let large_queries = WorkloadGen::with_config(
        WorkloadConfig {
            n_items: large_items,
            legs: 6..=7,
            ..WorkloadConfig::default()
        },
        scale.seed ^ 0xE7A1,
    )
    .portfolio_queries(n_large, &large_values);

    let m_fig5 = bench_workload(&fig5_queries, &values0, ticks);
    let m_large = bench_workload(&large_queries, &large_values, ticks);

    // Fig5 parity: identical seed, naive vs delta evaluation. Everything
    // but wall-clock solver time must agree; the enforce gate pins the
    // per-query violation counts byte-for-byte.
    let n_parity = if args.quick { 10 } else { 32 };
    let parity_naive = run(&fig5_config(&scale, n_parity, EvalMode::Naive)).expect("naive run");
    let parity_delta = run(&fig5_config(
        &scale,
        n_parity,
        EvalMode::Delta {
            rebase_every: REBASE_EVERY,
        },
    ))
    .expect("delta run");
    let violations_match = parity_naive.per_query_violations == parity_delta.per_query_violations;
    let notifications_match = parity_naive.user_notifications == parity_delta.user_notifications;

    let row = |name: &str, m: &Measurement, n_queries: usize| {
        vec![
            name.to_string(),
            n_queries.to_string(),
            format!("{:.1}", m.naive_ns),
            format!("{:.1}", m.compiled_ns),
            format!("{:.1}", m.delta_ns),
            fmt(m.naive_ns / m.compiled_ns),
            fmt(m.naive_ns / m.delta_ns),
        ]
    };
    print_table(
        "evalbench: fidelity-sampling cost (ns/sample)",
        &[
            "workload",
            "queries",
            "naive",
            "compiled",
            "delta",
            "compiled_x",
            "delta_x",
        ],
        &[
            row("fig5", &m_fig5, n_fig5),
            row("large", &m_large, n_large),
        ],
    );
    println!(
        "\nfig5 parity (n={n_parity}): violations {} notifications {}",
        if violations_match { "match" } else { "DIFFER" },
        if notifications_match {
            "match"
        } else {
            "DIFFER"
        },
    );

    let wl_json = |name: &str, m: &Measurement, n_queries: usize| {
        format!(
            "  \"{name}\": {{\n    \"n_queries\": {n_queries},\n    \
             \"ticks\": {ticks},\n    \"samples\": {},\n    \
             \"naive_ns_per_sample\": {:.2},\n    \
             \"compiled_ns_per_sample\": {:.2},\n    \
             \"delta_ns_per_sample\": {:.2},\n    \
             \"compiled_speedup\": {:.3},\n    \"delta_speedup\": {:.3},\n    \
             \"delta_updates\": {}\n  }}",
            m.samples,
            m.naive_ns,
            m.compiled_ns,
            m.delta_ns,
            m.naive_ns / m.compiled_ns,
            m.naive_ns / m.delta_ns,
            m.delta_updates,
        )
    };
    let json = format!(
        "{{\n  \"quick\": {},\n  \"rebase_every\": {REBASE_EVERY},\n\
         {},\n{},\n  \"fig5_parity\": {{\n    \"n_queries\": {n_parity},\n    \
         \"violations_match\": {violations_match},\n    \
         \"notifications_match\": {notifications_match}\n  }}\n}}\n",
        args.quick,
        wl_json("fig5", &m_fig5, n_fig5),
        wl_json("large", &m_large, n_large),
    );
    std::fs::write(&args.out, json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);

    if args.enforce {
        let mut failed = false;
        let delta_speedup = m_large.naive_ns / m_large.delta_ns;
        if delta_speedup < MIN_DELTA_SPEEDUP {
            eprintln!(
                "FAIL: delta speedup {delta_speedup:.2}x on the large workload \
                 below the {MIN_DELTA_SPEEDUP}x floor"
            );
            failed = true;
        }
        if !violations_match {
            eprintln!(
                "FAIL: per-query violation counts differ between naive and delta \
                 evaluation:\n  naive {:?}\n  delta {:?}",
                parity_naive.per_query_violations, parity_delta.per_query_violations
            );
            failed = true;
        }
        if !notifications_match {
            eprintln!(
                "FAIL: user notifications differ between naive ({}) and delta ({})",
                parity_naive.user_notifications, parity_delta.user_notifications
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("enforce: delta speedup {delta_speedup:.2}x and fig5 parity pass");
    }
}
