//! Scheduler + item-state hot-loop benchmark (heap vs wheel, scatter vs
//! SoA, per-event vs batched ingestion).
//!
//! Replays the simulator's event loop — drift a subset of items each
//! tick, push a refresh when a value escapes its DAB filter, drain
//! arrivals and fold them into per-query accumulators — stripped of GP
//! solves so the scheduling and state-layout costs dominate, at 1k /
//! 100k / 1M items. Four variants:
//!
//! * **heap_scatter** — the seed path: `BinaryHeap` event queue,
//!   array-of-structs item state, and a fresh `Vec` of affected queries
//!   allocated per event (as the pre-SoA engine did);
//! * **wheel_scatter** — same state, [`pq_sim::TimerWheel`] scheduler:
//!   isolates the heap → wheel win;
//! * **heap_soa** — heap scheduler over [`pq_sim::ItemTable`] flat
//!   columns with reused scratch: isolates the layout win;
//! * **wheel_soa_batched** — the shipped path: wheel scheduler, SoA
//!   state, and same-delivery-window arrivals drained as one batch
//!   swept in a single pass.
//!
//! `--enforce` additionally requires a 3x end-to-end events/sec speedup
//! of `wheel_soa_batched` over `heap_scatter` on the largest workload,
//! and replays a fixed-seed fig5-style simulation under
//! [`pq_sim::Scheduler::Heap`] and [`pq_sim::Scheduler::Wheel`],
//! requiring byte-identical metrics.
//!
//! Usage: `simbench [--quick] [--enforce] [--out PATH]`

use std::hint::black_box;
use std::time::Instant;

use pq_bench::{fmt, print_table, Scale};
use pq_core::{AssignmentStrategy, PqHeuristic};
use pq_sim::{
    run, DelayConfig, Event, EventQueue, ItemTable, Scheduler, SimConfig, SimStrategy, TimerWheel,
};

/// Events/sec speedup floor `--enforce` holds the full new path to on
/// the largest workload.
const MIN_FULL_SPEEDUP: f64 = 3.0;
/// The wheel's time quantum; delivery delays are quantized to it so
/// same-window arrivals collide (the regime batching is built for).
const QUANTUM: f64 = 1.0 / 64.0;

struct Args {
    quick: bool,
    enforce: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        enforce: false,
        out: "BENCH_sim.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--enforce" => args.enforce = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: simbench [--quick] [--enforce] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Plain splitmix-style hash — deterministic drift with no shared RNG.
fn hash2(a: u64, b: u64) -> u64 {
    let mut s = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s ^= s >> 31;
    s
}

/// The synthetic universe: `n_items` items, two queries per item over a
/// pool of `n_items / 8` accumulator queries, `touched` drifting items
/// per tick.
struct Workload {
    n_items: usize,
    n_queries: usize,
    ticks: usize,
    touched: usize,
    item_queries: Vec<Vec<u32>>,
}

impl Workload {
    fn new(n_items: usize, target_events: usize) -> Self {
        let n_queries = (n_items / 8).max(4);
        let item_queries = (0..n_items)
            .map(|i| {
                let a = (i / 8) % n_queries;
                let b = (hash2(i as u64, 0x51) as usize) % n_queries;
                if a == b {
                    vec![a as u32]
                } else {
                    vec![a as u32, b as u32]
                }
            })
            .collect();
        let touched = (n_items / 32).max(16).min(n_items);
        // Roughly half of the touches escape the filter; oversize the
        // tick count so every size processes ~target_events events.
        let ticks = (2 * target_events).div_ceil(touched).max(8);
        Workload {
            n_items,
            n_queries,
            ticks,
            touched,
            item_queries,
        }
    }

    fn initial(&self) -> Vec<f64> {
        (0..self.n_items).map(|i| 100.0 + (i % 50) as f64).collect()
    }

    /// The item drifting at slot `k` of `tick` and its new value, or
    /// `None` when the move stays inside the ±0.5 filter.
    #[inline]
    fn drift(&self, tick: usize, k: usize, value: f64, last_pushed: f64) -> (usize, f64, bool) {
        let h = hash2(tick as u64, k as u64);
        let item = (h % self.n_items as u64) as usize;
        let u = (hash2(h, 0xA5) % 10_000) as f64 / 5_000.0 - 1.0;
        let new = value + u;
        (item, new, (new - last_pushed).abs() > 0.5)
    }

    /// Delivery delay for a push from `tick` slot `k`: mostly sub-second
    /// with a heavy tail up to ~32 s (the planetlab-like Pareto regime),
    /// quantized so same-window arrivals share an exact time. The tail
    /// keeps tens of thousands of events pending at the larger sizes —
    /// the population a comparison-based heap pays `O(log n)` cache
    /// misses on and a timer wheel files in `O(1)`.
    #[inline]
    fn delay(&self, tick: usize, k: usize) -> f64 {
        let h = hash2(tick as u64 ^ 0xD1CE, k as u64);
        if h.is_multiple_of(4) {
            (1u64 << ((h >> 8) % 6)) as f64 + ((h >> 16) % 64) as f64 * QUANTUM
        } else {
            0.25 + ((h >> 16) % 48) as f64 * QUANTUM
        }
    }
}

/// Per-event coordinator work shared by every variant: fold the move
/// into each affected query and check it against the query's bound.
#[inline]
fn fold_event(queries: &[u32], qacc: &mut [f64], old: f64, new: f64, stale: &mut Vec<u32>) {
    for &q in queries {
        let q = q as usize;
        qacc[q] += new - old;
        if qacc[q].abs() > 400.0 {
            stale.push(q as u32);
            qacc[q] = 0.0;
        }
    }
}

/// The seed path and its wheel-only variant: array-of-structs state and
/// a fresh affected-query `Vec` per event.
struct ItemAo {
    value: f64,
    last_pushed: f64,
    coord_value: f64,
}

enum Queue {
    Heap(EventQueue),
    Wheel(TimerWheel),
}

impl Queue {
    fn new(scheduler: Scheduler) -> Self {
        match scheduler {
            Scheduler::Heap => Queue::Heap(EventQueue::new()),
            Scheduler::Wheel => Queue::Wheel(TimerWheel::new()),
        }
    }
    #[inline]
    fn push(&mut self, time: f64, ev: Event) {
        match self {
            Queue::Heap(q) => q.push(time, ev),
            Queue::Wheel(q) => q.push(time, ev),
        }
    }
    #[inline]
    fn pop_until(&mut self, horizon: f64) -> Option<(f64, Event)> {
        match self {
            Queue::Heap(q) => q.pop_until(horizon),
            Queue::Wheel(q) => q.pop_until(horizon),
        }
    }
    #[inline]
    fn peek_time(&mut self) -> Option<f64> {
        match self {
            Queue::Heap(q) => q.peek_time(),
            Queue::Wheel(q) => q.peek_time(),
        }
    }
}

fn run_scatter(w: &Workload, scheduler: Scheduler) -> (u64, f64) {
    let mut items: Vec<ItemAo> = w
        .initial()
        .into_iter()
        .map(|v| ItemAo {
            value: v,
            last_pushed: v,
            coord_value: v,
        })
        .collect();
    let mut queue = Queue::new(scheduler);
    let mut qacc = vec![0.0; w.n_queries];
    let mut events = 0u64;
    let started = Instant::now();
    for tick in 0..=w.ticks {
        let now = tick as f64;
        let horizon = if tick == w.ticks { f64::INFINITY } else { now };
        while let Some((_, ev)) = queue.pop_until(horizon) {
            let Event::RefreshArrive { item, value } = ev else {
                unreachable!()
            };
            // Per-event allocations, as the pre-SoA engine made.
            let affected: Vec<u32> = w.item_queries[item].clone();
            let mut stale: Vec<u32> = Vec::new();
            let old = items[item].coord_value;
            items[item].coord_value = value;
            fold_event(&affected, &mut qacc, old, value, &mut stale);
            black_box(&stale);
            events += 1;
        }
        if tick == w.ticks {
            break;
        }
        for k in 0..w.touched {
            let it = &items[(hash2(tick as u64, k as u64) % w.n_items as u64) as usize];
            let (item, new, escaped) = w.drift(tick, k, it.value, it.last_pushed);
            items[item].value = new;
            if escaped {
                items[item].last_pushed = new;
                queue.push(
                    now + w.delay(tick, k),
                    Event::RefreshArrive { item, value: new },
                );
            }
        }
    }
    (events, started.elapsed().as_secs_f64())
}

fn run_soa(w: &Workload, scheduler: Scheduler, batched: bool) -> (u64, f64) {
    let mut items = ItemTable::new(&w.initial());
    let mut queue = Queue::new(scheduler);
    let mut qacc = vec![0.0; w.n_queries];
    let mut stale: Vec<u32> = Vec::new();
    let mut batch: Vec<(usize, f64)> = Vec::new();
    let mut events = 0u64;
    let started = Instant::now();
    for tick in 0..=w.ticks {
        let now = tick as f64;
        let horizon = if tick == w.ticks { f64::INFINITY } else { now };
        let mut held: Option<(f64, Event)> = None;
        while let Some((t, ev)) = held.take().or_else(|| queue.pop_until(horizon)) {
            let Event::RefreshArrive { item, value } = ev else {
                unreachable!()
            };
            batch.clear();
            batch.push((item, value));
            items.mark_dirty(item);
            if batched {
                // Drain every same-window arrival for distinct items
                // into one batch; a duplicate item starts the next one.
                while queue.peek_time() == Some(t) {
                    let (t2, ev2) = queue.pop_until(horizon).expect("peeked");
                    let Event::RefreshArrive {
                        item: item2,
                        value: value2,
                    } = ev2
                    else {
                        unreachable!()
                    };
                    if items.is_dirty(item2) {
                        held = Some((
                            t2,
                            Event::RefreshArrive {
                                item: item2,
                                value: value2,
                            },
                        ));
                        break;
                    }
                    items.mark_dirty(item2);
                    batch.push((item2, value2));
                }
            }
            // One fused sweep over the batch.
            for &(item, value) in &batch {
                let old = items.coord_value(item);
                items.set_coord_value(item, value);
                stale.clear();
                fold_event(&w.item_queries[item], &mut qacc, old, value, &mut stale);
                black_box(&stale);
            }
            for &(item, _) in &batch {
                items.clear_dirty(item);
            }
            events += batch.len() as u64;
        }
        if tick == w.ticks {
            break;
        }
        for k in 0..w.touched {
            let probe = (hash2(tick as u64, k as u64) % w.n_items as u64) as usize;
            let (item, new, escaped) =
                w.drift(tick, k, items.value(probe), items.last_pushed(probe));
            items.set_value(item, new);
            if escaped {
                items.set_last_pushed(item, new);
                queue.push(
                    now + w.delay(tick, k),
                    Event::RefreshArrive { item, value: new },
                );
            }
        }
    }
    (events, started.elapsed().as_secs_f64())
}

struct Measurement {
    n_items: usize,
    events: u64,
    heap_scatter_ns: f64,
    wheel_scatter_ns: f64,
    heap_soa_ns: f64,
    wheel_soa_batched_ns: f64,
}

impl Measurement {
    fn full_speedup(&self) -> f64 {
        self.heap_scatter_ns / self.wheel_soa_batched_ns
    }
}

fn bench_size(n_items: usize, target_events: usize) -> Measurement {
    let w = Workload::new(n_items, target_events);
    let (events, seed_s) = run_scatter(&w, Scheduler::Heap);
    let (e2, wheel_s) = run_scatter(&w, Scheduler::Wheel);
    let (e3, soa_s) = run_soa(&w, Scheduler::Heap, false);
    let (e4, full_s) = run_soa(&w, Scheduler::Wheel, true);
    assert!(
        events == e2 && events == e3 && events == e4,
        "variants must process identical event streams: {events} {e2} {e3} {e4}"
    );
    let per = |s: f64| s * 1e9 / events.max(1) as f64;
    Measurement {
        n_items,
        events,
        heap_scatter_ns: per(seed_s),
        wheel_scatter_ns: per(wheel_s),
        heap_soa_ns: per(soa_s),
        wheel_soa_batched_ns: per(full_s),
    }
}

/// Fig5-style simulation config with a selectable scheduler.
fn fig5_config(scale: &Scale, n_queries: usize, scheduler: Scheduler) -> SimConfig {
    let traces = scale.universe();
    let queries = scale
        .workload()
        .portfolio_queries(n_queries, &traces.initial_values());
    let mut cfg = SimConfig::new(traces, queries);
    cfg.gp = scale.sim_gp_options();
    cfg.strategy = SimStrategy::PerQuery {
        strategy: AssignmentStrategy::DualDab { mu: 5.0 },
        heuristic: PqHeuristic::DifferentSum,
    };
    cfg.delays = DelayConfig::planetlab_like();
    cfg.mu_cost = 5.0;
    cfg.scheduler = scheduler;
    cfg
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_env();
    let target_events = if args.quick { 300_000 } else { 3_000_000 };
    let sizes = [1_000usize, 100_000, 1_000_000];

    let measurements: Vec<Measurement> = sizes
        .iter()
        .map(|&n| bench_size(n, target_events))
        .collect();

    // Fig5 parity: identical seed, heap vs wheel scheduling. Everything
    // but wall-clock solver time must agree byte-for-byte.
    let n_parity = if args.quick { 10 } else { 32 };
    let mut parity_heap = run(&fig5_config(&scale, n_parity, Scheduler::Heap)).expect("heap run");
    let mut parity_wheel =
        run(&fig5_config(&scale, n_parity, Scheduler::Wheel)).expect("wheel run");
    parity_heap.solver_seconds = 0.0;
    parity_wheel.solver_seconds = 0.0;
    let metrics_match = parity_heap == parity_wheel;

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.n_items.to_string(),
                m.events.to_string(),
                format!("{:.1}", m.heap_scatter_ns),
                format!("{:.1}", m.wheel_scatter_ns),
                format!("{:.1}", m.heap_soa_ns),
                format!("{:.1}", m.wheel_soa_batched_ns),
                fmt(m.full_speedup()),
            ]
        })
        .collect();
    print_table(
        "simbench: event-loop cost (ns/event)",
        &[
            "items",
            "events",
            "heap_scatter",
            "wheel_scatter",
            "heap_soa",
            "wheel_soa_batched",
            "full_x",
        ],
        &rows,
    );
    println!(
        "\nfig5 parity (n={n_parity}): metrics {}",
        if metrics_match { "match" } else { "DIFFER" },
    );

    let size_json = |m: &Measurement| {
        let eps = |ns: f64| 1e9 / ns;
        format!(
            "    {{\n      \"n_items\": {},\n      \"events\": {},\n      \
             \"heap_scatter_ns_per_event\": {:.2},\n      \
             \"wheel_scatter_ns_per_event\": {:.2},\n      \
             \"heap_soa_ns_per_event\": {:.2},\n      \
             \"wheel_soa_batched_ns_per_event\": {:.2},\n      \
             \"heap_scatter_events_per_sec\": {:.0},\n      \
             \"wheel_soa_batched_events_per_sec\": {:.0},\n      \
             \"wheel_speedup\": {:.3},\n      \"soa_speedup\": {:.3},\n      \
             \"full_speedup\": {:.3}\n    }}",
            m.n_items,
            m.events,
            m.heap_scatter_ns,
            m.wheel_scatter_ns,
            m.heap_soa_ns,
            m.wheel_soa_batched_ns,
            eps(m.heap_scatter_ns),
            eps(m.wheel_soa_batched_ns),
            m.heap_scatter_ns / m.wheel_scatter_ns,
            m.heap_scatter_ns / m.heap_soa_ns,
            m.full_speedup(),
        )
    };
    let json = format!(
        "{{\n  \"quick\": {},\n  \"sizes\": [\n{}\n  ],\n  \
         \"fig5_parity\": {{\n    \"n_queries\": {n_parity},\n    \
         \"metrics_match\": {metrics_match}\n  }}\n}}\n",
        args.quick,
        measurements
            .iter()
            .map(size_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write(&args.out, json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);

    if args.enforce {
        let mut failed = false;
        let largest = measurements.last().expect("at least one size");
        let full_speedup = largest.full_speedup();
        if full_speedup < MIN_FULL_SPEEDUP {
            eprintln!(
                "FAIL: wheel+SoA+batched speedup {full_speedup:.2}x on the {}-item \
                 workload below the {MIN_FULL_SPEEDUP}x floor",
                largest.n_items
            );
            failed = true;
        }
        if !metrics_match {
            eprintln!("FAIL: fig5 metrics differ between heap and wheel scheduling");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("enforce: full speedup {full_speedup:.2}x and fig5 scheduler parity pass");
    }
}
