//! Fig. 8(a): Half-and-Half vs Different Sum on *independent* arbitrage
//! queries (`P1 - P2 : B` with disjoint buy/sell items).
//!
//! Expected shape (paper): as the number of queries grows, DS incurs fewer
//! recomputations than HH, with only a marginal (<1 %) refresh increase.

fn main() {
    pq_bench::heuristics::run_heuristic_figure(true, "Fig 8(a): independent PQs");
}
