//! Fig. 8(c): PPQs on a dissemination network of coordinators.
//!
//! A tree of coordinators (10 at paper scale) built after Shah et al.
//! (TKDE'04, \[6\]) serves growing numbers of portfolio queries. The single-
//! DAB scheme (WSDAB in the paper — here Optimal Refresh, the equivalent
//! recompute-on-every-refresh assignment) is compared against Dual-DAB
//! for mu in {1, 5, 10, 20}.
//!
//! Expected shape (paper): the single-DAB scheme's recomputation count
//! explodes with the number of queries (604,735 at 10,000 queries in the
//! paper) — at large query counts an approach that reduces recomputations
//! is essential.

use pq_bench::{obs_from_env, print_table, Scale};
use pq_core::AssignmentStrategy;
use pq_obs::{names, EventKind};
use pq_sim::{run_network_observed, NetworkConfig};

fn main() {
    let scale = Scale::from_env();
    let obs = obs_from_env();
    let full = std::env::var_os("PQ_BENCH_FULL").is_some_and(|v| v != "0");
    let n_coordinators = if full { 10 } else { 4 };
    let query_counts: Vec<usize> = if full {
        vec![100, 1000, 10_000]
    } else {
        vec![50, 200, 800]
    };
    let traces = scale.universe();

    let strategies: Vec<(String, AssignmentStrategy)> = vec![
        ("single-DAB".into(), AssignmentStrategy::OptimalRefresh),
        ("dual(mu=1)".into(), AssignmentStrategy::DualDab { mu: 1.0 }),
        ("dual(mu=5)".into(), AssignmentStrategy::DualDab { mu: 5.0 }),
        (
            "dual(mu=10)".into(),
            AssignmentStrategy::DualDab { mu: 10.0 },
        ),
        (
            "dual(mu=20)".into(),
            AssignmentStrategy::DualDab { mu: 20.0 },
        ),
    ];

    let mut rows = Vec::new();
    for &n in &query_counts {
        let queries = scale
            .workload()
            .portfolio_queries(n, &traces.initial_values());
        let mut row = vec![n.to_string()];
        for (name, strategy) in &strategies {
            let mut cfg = NetworkConfig::round_robin(
                traces.clone(),
                queries.clone(),
                n_coordinators,
                *strategy,
            );
            cfg.gp = scale.sim_gp_options();
            let started = std::time::Instant::now();
            // Observed variant so PQ_OBS_JSONL/PQ_OBS_ADDR capture the
            // network's sim/DAB/GP events, as the other figures do.
            let m =
                run_network_observed(&cfg, &obs).unwrap_or_else(|e| panic!("{name} x {n}: {e}"));
            let series = name.clone();
            obs.emit_with(names::BENCH_RUN, EventKind::Point, |e| {
                e.with("figure", "fig8c")
                    .with("series", series)
                    .with("n_queries", n)
                    .with("recomputations", m.recomputations())
                    .with("refreshes", m.refreshes())
                    .with("solver_s", m.solver_seconds)
                    .with("wall_s", started.elapsed().as_secs_f64())
            });
            row.push(m.recomputations().to_string());
        }
        rows.push(row);
    }

    let header: Vec<&str> = std::iter::once("queries")
        .chain(strategies.iter().map(|(n, _)| n.as_str()))
        .collect();
    print_table(
        &format!("Fig 8(c): recomputations on a {n_coordinators}-coordinator network"),
        &header,
        &rows,
    );
    obs.flush();
}
