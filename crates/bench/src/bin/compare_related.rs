//! §V-A "Comparison with related work": DAB stringency of the per-item
//! budget-split baseline (adapted from Sharfman et al. \[5\]) versus Optimal
//! Refresh, on the paper's worked example — a product query with B = 50 at
//! V = (40, 20) and equal rates.
//!
//! Expected shape (paper): the n-sufficient-conditions approach yields
//! more stringent DABs (the paper reports (3.17, 2.5) for \[5\] versus
//! (3.87, 2.79) for Optimal Refresh on its variant of the example), so
//! its estimated refresh rate is strictly higher. The same comparison is
//! repeated over a generated portfolio workload.

use pq_bench::{fmt, print_table, Scale};
use pq_core::{baseline::per_item_split, optimal_refresh, SolveContext};
use pq_poly::{ItemId, PolynomialQuery};

fn main() {
    // --- The worked example ------------------------------------------------
    let q = PolynomialQuery::portfolio([(1.0, ItemId(0), ItemId(1))], 50.0).unwrap();
    let values = [40.0, 20.0];
    let rates = [1.0, 1.0];
    let ctx = SolveContext::new(&values, &rates);
    let base = per_item_split(&q, &ctx).unwrap();
    let opt = optimal_refresh(&q, &ctx).unwrap();
    let rows = vec![
        vec![
            "per-item-split [5]".to_string(),
            fmt(base.primary_dab(ItemId(0)).unwrap()),
            fmt(base.primary_dab(ItemId(1)).unwrap()),
            fmt(base.refresh_rate),
        ],
        vec![
            "optimal-refresh".to_string(),
            fmt(opt.primary_dab(ItemId(0)).unwrap()),
            fmt(opt.primary_dab(ItemId(1)).unwrap()),
            fmt(opt.refresh_rate),
        ],
    ];
    print_table(
        "Worked example: Q = x*y : 50 at V = (40, 20)",
        &["scheme", "b_x", "b_y", "est. refreshes/unit"],
        &rows,
    );

    // --- Generated portfolio workload --------------------------------------
    let scale = Scale::from_env();
    let traces = scale.universe();
    let initial = traces.initial_values();
    let rates: Vec<f64> =
        pq_ddm::RateEstimator::SampledAverage { interval_ticks: 60 }.estimate_all(&traces);
    let queries = scale.workload().portfolio_queries(40, &initial);
    let ctx = SolveContext::new(&initial, &rates);

    let mut worse = 0usize;
    let mut ratio_sum = 0.0;
    for q in &queries {
        let b = per_item_split(q, &ctx).unwrap();
        let o = optimal_refresh(q, &ctx).unwrap();
        if b.refresh_rate >= o.refresh_rate {
            worse += 1;
        }
        ratio_sum += b.refresh_rate / o.refresh_rate;
    }
    let rows = vec![vec![
        queries.len().to_string(),
        worse.to_string(),
        fmt(ratio_sum / queries.len() as f64),
    ]];
    print_table(
        "Workload sweep: baseline vs optimal refresh objective",
        &[
            "queries",
            "baseline worse-or-equal",
            "mean refresh ratio (base/opt)",
        ],
        &rows,
    );
}
