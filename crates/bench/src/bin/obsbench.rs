//! Telemetry-plane overhead benchmark (registry lookups vs pre-resolved
//! handles vs thread-sharded collectors).
//!
//! Replays a coordinator-style hot loop — drift a random item, fold the
//! delta into two accumulator queries, check a staleness bound — over
//! 1k / 100k / 1M item universes, instrumented four ways:
//!
//! * **off** — the bare workload, no telemetry calls at all: the
//!   baseline every other variant is charged against;
//! * **registry** — per-event by-name lookups (`obs.counter(name)`)
//!   through the registry mutex, the naive way to instrument;
//! * **handles** — per-event increments on pre-resolved shared
//!   [`pq_obs::Counter`]/[`pq_obs::Histogram`] `Arc`s (one atomic
//!   `fetch_add` per event, no lock);
//! * **sharded** — the shipped discipline: a thread-private
//!   [`pq_obs::LocalCollector`] over interned slot ids, adds amortized
//!   over each ingestion batch, one causal [`pq_obs::Timer`] span per
//!   tick, and the sampling profiler running at ~97 Hz throughout;
//! * **windowed** — sharded plus the full live-health plane: a
//!   [`pq_obs::WindowPlane`] advanced and fed every tick, the
//!   [`pq_obs::SloEngine`] observing each tick's deltas, a
//!   [`pq_obs::Watchdog`] heartbeat per tick, and the flight
//!   [`pq_obs::Recorder`] buffering every event as a subscriber.
//!
//! The five variants run *time-sliced*: each repetition advances all
//! of them in alternating ~32-tick slices (per-slice permuted order),
//! so machine-level noise lands on every variant nearly equally and
//! cancels out of the overhead ratios. Each instrumented run must
//! still account for every event in the final snapshot (fidelity is
//! asserted, not assumed). `--enforce` additionally requires, on the
//! 1M-item workload, that the sharded variant stays under
//! [`MAX_SHARDED_OVERHEAD_PCT`] over `off` and that the live-health
//! plane (windowed over sharded — the increment this subsystem adds)
//! stays under [`MAX_PLANE_OVERHEAD_PCT`].
//!
//! Usage: `obsbench [--quick] [--enforce] [--out PATH]`

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use pq_bench::{fmt, print_table};
use pq_obs::{
    names, start_profiler, Obs, Recorder, RecorderConfig, SloConfig, SloEngine, Watchdog,
    WindowPlane, WINDOW_1M,
};

/// Ceiling `--enforce` holds the sharded discipline to over the bare
/// loop on the largest workload. Re-baselined for the interleaved
/// methodology: with five resident workloads the paired ratios charge
/// the sharded variant cache effects the old contiguous floor
/// measurement hid, so clean readings sit at 2-4% (microbenchmarked
/// floor ~1%: ~45 ns per collector add+record pair, ~200 ns per null
/// span). 6% leaves noise margin while still flagging any hot-path
/// regression — per-event locking reads +50% and more.
const MAX_SHARDED_OVERHEAD_PCT: f64 = 6.0;
/// Ceiling `--enforce` holds the live-health plane (the windowed
/// variant's increment over sharded — per-tick window advance, SLO
/// observation, watchdog beat, recorder subscriber) to on the largest
/// workload.
const MAX_PLANE_OVERHEAD_PCT: f64 = 3.0;
/// Events folded per ingestion batch (the granularity the engine's
/// batched refresh ingestion drains at).
const BATCH: usize = 64;
/// Events per simulated tick (one recompute-batch span each).
const TICK: usize = 1024;
/// Profiler rate for the sharded variant; prime, so samples do not
/// phase-lock with the tick cadence.
const PROFILE_HZ: u32 = 97;

struct Args {
    quick: bool,
    enforce: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        enforce: false,
        out: "BENCH_obs.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--enforce" => args.enforce = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: obsbench [--quick] [--enforce] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Plain splitmix-style hash — deterministic drift with no shared RNG.
fn hash2(a: u64, b: u64) -> u64 {
    let mut s = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s ^= s >> 31;
    s
}

/// The synthetic universe: random-access item state plus per-query
/// accumulators, sized so the larger workloads leave cache and the
/// per-event cost approaches the engine's real (memory-bound) regime.
struct Workload {
    n_items: usize,
    n_queries: usize,
    events: usize,
}

impl Workload {
    fn new(n_items: usize, events: usize) -> Self {
        Workload {
            n_items,
            n_queries: (n_items / 8).max(4),
            events,
        }
    }

    fn initial(&self) -> Vec<f64> {
        (0..self.n_items).map(|i| 100.0 + (i % 50) as f64).collect()
    }
}

/// Per-event coordinator work shared by every variant: drift one item,
/// run the delta through a dependent multiply-add chain (the shape of a
/// compiled-plan fold across a query's product legs), fold the result
/// into two accumulator queries, and check a staleness bound.
#[inline]
fn step(i: u64, values: &mut [f64], qacc: &mut [f64], stale: &mut u64) {
    let h = hash2(i, 0x0B5);
    let item = (h % values.len() as u64) as usize;
    let delta = ((h >> 8) % 10_000) as f64 / 5_000.0 - 1.0;
    values[item] += delta;
    let mut fold = delta;
    for _ in 0..12 {
        fold = fold.mul_add(0.999_999_94, values[item] * 1e-9);
    }
    let q1 = ((h >> 20) % qacc.len() as u64) as usize;
    let q2 = ((h >> 40) % qacc.len() as u64) as usize;
    qacc[q1] += fold * values[item];
    qacc[q2] -= delta;
    if qacc[q1].abs() > 1e6 {
        qacc[q1] = 0.0;
        *stale += 1;
    }
}

/// Order-independent digest of the end state, for asserting that every
/// variant performed the identical workload.
fn digest(values: &[f64], qacc: &[f64], stale: u64) -> u64 {
    let sum: f64 = values.iter().sum::<f64>() + qacc.iter().sum::<f64>();
    sum.to_bits() ^ stale
}

/// The workload state a variant mutates across its interleaved slices.
struct LoopState {
    values: Vec<f64>,
    qacc: Vec<f64>,
    stale: u64,
}

impl LoopState {
    fn new(w: &Workload) -> Self {
        LoopState {
            values: w.initial(),
            qacc: vec![0.0; w.n_queries],
            stale: 0,
        }
    }

    fn digest(&self) -> u64 {
        black_box(&self.qacc);
        digest(&self.values, &self.qacc, self.stale)
    }
}

/// One instrumentation variant, resumable in event-range slices so the
/// driver can interleave all variants at millisecond granularity — a
/// noisy-neighbour slowdown then lands on every variant almost equally
/// instead of poisoning whichever variant it happened to overlap.
trait Variant {
    /// Executes events `start..end`. The driver keeps slice boundaries
    /// tick-aligned, so a tick never splits across slices.
    fn slice(&mut self, start: u64, end: u64);

    /// Tears down, asserting the run accounted for every event; returns
    /// `(workload digest, profiler samples)`.
    fn finish(self: Box<Self>, w: &Workload) -> (u64, u64);
}

struct OffRun {
    s: LoopState,
}

impl Variant for OffRun {
    fn slice(&mut self, start: u64, end: u64) {
        for i in start..end {
            step(i, &mut self.s.values, &mut self.s.qacc, &mut self.s.stale);
        }
    }

    fn finish(self: Box<Self>, _w: &Workload) -> (u64, u64) {
        (self.s.digest(), 0)
    }
}

struct RegistryRun {
    obs: Obs,
    s: LoopState,
}

impl Variant for RegistryRun {
    fn slice(&mut self, start: u64, end: u64) {
        let mut i = start;
        while i < end {
            let _tick_span = self.obs.timed(names::SIM_RECOMPUTE_BATCH);
            let tick_end = (i + TICK as u64).min(end);
            while i < tick_end {
                let batch_end = (i + BATCH as u64).min(tick_end);
                let n = batch_end - i;
                while i < batch_end {
                    step(i, &mut self.s.values, &mut self.s.qacc, &mut self.s.stale);
                    self.obs.counter(names::SIM_REFRESH).inc();
                    i += 1;
                }
                self.obs.histogram(names::INGEST_BATCH_SIZE).record(n);
            }
        }
    }

    fn finish(self: Box<Self>, w: &Workload) -> (u64, u64) {
        assert_eq!(
            self.obs.snapshot().counters[names::SIM_REFRESH],
            w.events as u64,
            "registry variant must account for every event"
        );
        (self.s.digest(), 0)
    }
}

struct HandlesRun {
    obs: Obs,
    c_refresh: Arc<pq_obs::Counter>,
    h_batch: Arc<pq_obs::Histogram>,
    t_tick: pq_obs::Timer,
    s: LoopState,
}

impl Variant for HandlesRun {
    fn slice(&mut self, start: u64, end: u64) {
        let mut i = start;
        while i < end {
            let _tick_span = self.t_tick.start(&self.obs);
            let tick_end = (i + TICK as u64).min(end);
            while i < tick_end {
                let batch_end = (i + BATCH as u64).min(tick_end);
                let n = batch_end - i;
                while i < batch_end {
                    step(i, &mut self.s.values, &mut self.s.qacc, &mut self.s.stale);
                    self.c_refresh.inc();
                    i += 1;
                }
                self.h_batch.record(n);
            }
        }
    }

    fn finish(self: Box<Self>, w: &Workload) -> (u64, u64) {
        assert_eq!(
            self.obs.snapshot().counters[names::SIM_REFRESH],
            w.events as u64,
            "handles variant must account for every event"
        );
        (self.s.digest(), 0)
    }
}

struct ShardedRun {
    obs: Obs,
    c_refresh: pq_obs::CounterId,
    h_batch: pq_obs::HistogramId,
    t_tick: pq_obs::Timer,
    collector: pq_obs::LocalCollector,
    profiler: pq_obs::Profiler,
    s: LoopState,
}

impl ShardedRun {
    fn new(w: &Workload) -> Self {
        let obs = Obs::null();
        ShardedRun {
            c_refresh: obs.counter_id(names::SIM_REFRESH),
            h_batch: obs.histogram_id(names::INGEST_BATCH_SIZE),
            t_tick: obs.timer(names::SIM_RECOMPUTE_BATCH),
            collector: obs.collector(),
            profiler: start_profiler(&obs, PROFILE_HZ),
            obs,
            s: LoopState::new(w),
        }
    }
}

impl Variant for ShardedRun {
    fn slice(&mut self, start: u64, end: u64) {
        let mut i = start;
        while i < end {
            let _tick_span = self.t_tick.start(&self.obs);
            let tick_end = (i + TICK as u64).min(end);
            while i < tick_end {
                let batch_end = (i + BATCH as u64).min(tick_end);
                let n = batch_end - i;
                while i < batch_end {
                    step(i, &mut self.s.values, &mut self.s.qacc, &mut self.s.stale);
                    i += 1;
                }
                self.collector.add(self.c_refresh, n);
                self.collector.record(self.h_batch, n);
            }
        }
    }

    fn finish(self: Box<Self>, w: &Workload) -> (u64, u64) {
        self.profiler.stop();
        let snapshot = self.obs.snapshot();
        assert_eq!(
            snapshot.counters[names::SIM_REFRESH],
            w.events as u64,
            "sharded variant must account for every event"
        );
        let samples = snapshot
            .counters
            .get(names::PROFILE_SAMPLES)
            .copied()
            .unwrap_or(0);
        (self.s.digest(), samples)
    }
}

/// The shipped live-health configuration on top of the sharded
/// discipline: recorder subscriber, windowed plane advanced per tick,
/// SLO engine observing each tick's deltas, watchdog heartbeat.
struct WindowedRun {
    obs: Obs,
    c_refresh: pq_obs::CounterId,
    h_batch: pq_obs::HistogramId,
    t_tick: pq_obs::Timer,
    collector: pq_obs::LocalCollector,
    profiler: pq_obs::Profiler,
    plane: Arc<WindowPlane>,
    w_refresh: pq_obs::window::WindowId,
    slo: Arc<SloEngine>,
    watchdog: Arc<Watchdog>,
    dir: std::path::PathBuf,
    tick: u64,
    s: LoopState,
}

impl WindowedRun {
    fn new(w: &Workload) -> Self {
        let dir = std::env::temp_dir().join(format!("pq-obsbench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let recorder = Recorder::new(RecorderConfig::new(dir.join("flight.jsonl")));
        let obs = Obs::with_subscriber(Arc::new(recorder.clone()));
        obs.install_recorder(recorder);
        // Sharded adds only merge into the named counters at snapshot
        // time, so the plane is fed directly per tick rather than
        // polling a counter source.
        let plane = Arc::new(WindowPlane::new());
        let w_refresh = plane.track(names::SIM_REFRESH);
        obs.install_window_plane(plane.clone());
        let slo = Arc::new(SloEngine::new(SloConfig::default(), &obs));
        obs.install_slo_engine(slo.clone());
        let watchdog = Arc::new(Watchdog::new(std::time::Duration::from_secs(30)));
        obs.install_watchdog(watchdog.clone());
        WindowedRun {
            c_refresh: obs.counter_id(names::SIM_REFRESH),
            h_batch: obs.histogram_id(names::INGEST_BATCH_SIZE),
            t_tick: obs.timer(names::SIM_RECOMPUTE_BATCH),
            collector: obs.collector(),
            profiler: start_profiler(&obs, PROFILE_HZ),
            obs,
            plane,
            w_refresh,
            slo,
            watchdog,
            dir,
            tick: 0,
            s: LoopState::new(w),
        }
    }
}

impl Variant for WindowedRun {
    fn slice(&mut self, start: u64, end: u64) {
        let mut i = start;
        while i < end {
            self.watchdog.beat();
            let tick_span = self.t_tick.start(&self.obs);
            let tick_end = (i + TICK as u64).min(end);
            let tick_events = tick_end - i;
            while i < tick_end {
                let batch_end = (i + BATCH as u64).min(tick_end);
                let n = batch_end - i;
                while i < batch_end {
                    step(i, &mut self.s.values, &mut self.s.qacc, &mut self.s.stale);
                    i += 1;
                }
                self.collector.add(self.c_refresh, n);
                self.collector.record(self.h_batch, n);
            }
            drop(tick_span);
            self.plane.advance(self.tick);
            self.plane.record(self.w_refresh, tick_events);
            self.slo.observe(self.tick, tick_events, 0, 0);
            self.tick += 1;
        }
    }

    fn finish(self: Box<Self>, w: &Workload) -> (u64, u64) {
        self.watchdog.disarm();
        self.profiler.stop();
        let snapshot = self.obs.snapshot();
        assert_eq!(
            snapshot.counters[names::SIM_REFRESH],
            w.events as u64,
            "windowed variant must account for every event"
        );
        assert_eq!(
            self.slo.health().0,
            pq_obs::Health::Ok,
            "a clean run must not page"
        );
        assert!(
            self.plane.sum(names::SIM_REFRESH, WINDOW_1M).unwrap_or(0) > 0,
            "the windowed plane must have accumulated refresh ticks"
        );
        std::fs::remove_dir_all(&self.dir).ok();
        (self.s.digest(), 0)
    }
}

struct Measurement {
    n_items: usize,
    events: usize,
    off_ns: f64,
    registry_ns: f64,
    handles_ns: f64,
    sharded_ns: f64,
    windowed_ns: f64,
    /// Per-variant overhead over `off`, as the median over every
    /// interleaved time slice of the *same-slice* ratio — pairing each
    /// variant with a baseline measured milliseconds away under the
    /// same machine conditions (rather than dividing mins taken
    /// seconds apart), with the median discarding slices where either
    /// side got preempted.
    registry_pct: f64,
    handles_pct: f64,
    sharded_pct: f64,
    windowed_pct: f64,
    /// What the live-health plane itself costs: the windowed variant's
    /// median same-slice overhead over *sharded* — the two differ only
    /// by the per-tick plane/SLO/watchdog/recorder work, so this
    /// isolates the new subsystem from the sharded baseline it rides
    /// on.
    plane_pct: f64,
    profile_samples: u64,
}

/// The `k`-th (mod 120) lexicographic permutation of the five variant
/// indices, via the factorial number system — a cheap deterministic way
/// to vary the measurement order every time slice.
fn permutation(mut k: usize) -> [usize; 5] {
    let mut pool: Vec<usize> = (0..5).collect();
    let mut out = [0usize; 5];
    for (slot, fact) in [24usize, 6, 2, 1, 1].into_iter().enumerate() {
        out[slot] = pool.remove((k / fact) % pool.len());
        k %= fact;
    }
    out
}

fn bench_size(n_items: usize, events: usize, reps: usize) -> Measurement {
    let w = Workload::new(n_items, events);
    let (mut off_s, mut reg_s, mut han_s, mut sha_s, mut win_s) = (
        f64::INFINITY,
        f64::INFINITY,
        f64::INFINITY,
        f64::INFINITY,
        f64::INFINITY,
    );
    let mut profile_samples = 0u64;
    let mut expected = None;
    // Measurement discipline for a noisy (shared CI) box:
    //
    // * within a repetition, the five variants run *time-sliced*: each
    //   advances ~32 ticks, then the next, in a per-slice permuted
    //   order. A machine-level slowdown (CPU steal, frequency
    //   throttle) therefore lands on every variant almost equally and
    //   cancels in the ratios, instead of poisoning whichever variant
    //   happened to overlap it — the dominant error when each variant
    //   ran its full workload back to back;
    // * the slice order is a different permutation each slice, so no
    //   variant is pinned to a systematically hot or cold position and
    //   no pair stays adjacent;
    // * overhead percentages are the median over *every slice* of the
    //   same-slice variant/baseline ratio — a few hundred paired
    //   samples, so a multi-millisecond stall poisons a handful of
    //   them and the median shrugs it off (a per-rep statistic has
    //   only `reps` samples and one stall can move it);
    // * slices are kept long enough (~3 ms) that re-warming the
    //   telemetry state evicted by the other variants' working sets is
    //   amortised — much finer slicing overcharges the instrumented
    //   variants for cache eviction the real engine, which runs
    //   continuously, never pays;
    // * the ns/event columns use the min over reps — telemetry cost is
    //   a floor property.
    const VARIANTS: usize = 5;
    let mut ratios: [Vec<f64>; VARIANTS] = Default::default();
    let mut plane_ratios = Vec::new();
    let mut cycle = 0usize;
    for _rep in 0..reps {
        let mut runs: [Box<dyn Variant>; VARIANTS] = [
            Box::new(OffRun {
                s: LoopState::new(&w),
            }),
            Box::new(RegistryRun {
                obs: Obs::null(),
                s: LoopState::new(&w),
            }),
            Box::new({
                let obs = Obs::null();
                HandlesRun {
                    c_refresh: obs.counter(names::SIM_REFRESH),
                    h_batch: obs.histogram(names::INGEST_BATCH_SIZE),
                    t_tick: obs.timer(names::SIM_RECOMPUTE_BATCH),
                    obs,
                    s: LoopState::new(&w),
                }
            }),
            Box::new(ShardedRun::new(&w)),
            Box::new(WindowedRun::new(&w)),
        ];
        let mut rep_secs = [0.0f64; VARIANTS];
        // Tick-aligned so instrumented variants never split a tick
        // across slices; ~32 ticks ≈ 3 ms per slice interleaves far
        // below the noise timescale while staying long enough to
        // amortise re-warming evicted telemetry state.
        let slice_len = (TICK * 32) as u64;
        let mut start = 0u64;
        while start < events as u64 {
            let end = (start + slice_len).min(events as u64);
            let mut slice_secs = [0.0f64; VARIANTS];
            // Stride by a unit coprime to 120 so successive slices get
            // genuinely different orders — a unit stride walks the
            // lexicographic permutations in order and pins the leading
            // slot for 24 slices at a stretch.
            for &v in &permutation(cycle.wrapping_mul(53)) {
                let t = Instant::now();
                runs[v].slice(start, end);
                slice_secs[v] = t.elapsed().as_secs_f64();
                rep_secs[v] += slice_secs[v];
            }
            for (ratio, &secs) in ratios.iter_mut().zip(&slice_secs) {
                ratio.push(secs / slice_secs[0]);
            }
            plane_ratios.push(slice_secs[4] / slice_secs[3]);
            cycle += 1;
            start = end;
        }
        let mut rep_digests = [0u64; VARIANTS];
        for (v, run) in runs.into_iter().enumerate() {
            let (d, samples) = run.finish(&w);
            rep_digests[v] = d;
            profile_samples = profile_samples.max(samples);
        }
        let expected = *expected.get_or_insert(rep_digests[0]);
        assert!(
            rep_digests.iter().all(|&d| d == expected),
            "variants must perform the identical workload"
        );
        off_s = off_s.min(rep_secs[0]);
        reg_s = reg_s.min(rep_secs[1]);
        han_s = han_s.min(rep_secs[2]);
        sha_s = sha_s.min(rep_secs[3]);
        win_s = win_s.min(rep_secs[4]);
    }
    let per = |s: f64| s * 1e9 / events.max(1) as f64;
    let pct = |samples: &Vec<f64>| {
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        100.0 * (sorted[sorted.len() / 2] - 1.0)
    };
    Measurement {
        n_items,
        events,
        off_ns: per(off_s),
        registry_ns: per(reg_s),
        handles_ns: per(han_s),
        sharded_ns: per(sha_s),
        windowed_ns: per(win_s),
        registry_pct: pct(&ratios[1]),
        handles_pct: pct(&ratios[2]),
        sharded_pct: pct(&ratios[3]),
        windowed_pct: pct(&ratios[4]),
        plane_pct: pct(&plane_ratios),
        profile_samples,
    }
}

fn main() {
    let args = parse_args();
    let events = if args.quick { 1_000_000 } else { 4_000_000 };
    // With time-sliced interleaving each rep's ratios are already
    // noise-cancelled, so a handful of reps suffices for the medians —
    // each 1M-event rep runs all five variants (~0.3 s), keeping the
    // whole sweep well under a minute.
    let reps = 9;
    let sizes = [1_000usize, 100_000, 1_000_000];

    let measurements: Vec<Measurement> =
        sizes.iter().map(|&n| bench_size(n, events, reps)).collect();

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.n_items.to_string(),
                m.events.to_string(),
                format!("{:.1}", m.off_ns),
                format!("{:.1}", m.registry_ns),
                format!("{:.1}", m.handles_ns),
                format!("{:.1}", m.sharded_ns),
                format!("{:.1}", m.windowed_ns),
                fmt(m.registry_pct),
                fmt(m.handles_pct),
                fmt(m.sharded_pct),
                fmt(m.windowed_pct),
                fmt(m.plane_pct),
                m.profile_samples.to_string(),
            ]
        })
        .collect();
    print_table(
        "obsbench: telemetry cost per event (ns) and overhead vs off (%)",
        &[
            "items",
            "events",
            "off",
            "registry",
            "handles",
            "sharded",
            "windowed",
            "registry_pct",
            "handles_pct",
            "sharded_pct",
            "windowed_pct",
            "plane_pct",
            "samples",
        ],
        &rows,
    );

    let size_json = |m: &Measurement| {
        format!(
            "    {{\n      \"n_items\": {},\n      \"events\": {},\n      \
             \"off_ns_per_event\": {:.2},\n      \
             \"registry_ns_per_event\": {:.2},\n      \
             \"handles_ns_per_event\": {:.2},\n      \
             \"sharded_ns_per_event\": {:.2},\n      \
             \"windowed_ns_per_event\": {:.2},\n      \
             \"registry_overhead_pct\": {:.3},\n      \
             \"handles_overhead_pct\": {:.3},\n      \
             \"sharded_overhead_pct\": {:.3},\n      \
             \"windowed_overhead_pct\": {:.3},\n      \
             \"windowed_plane_over_sharded_pct\": {:.3},\n      \
             \"profile_samples\": {}\n    }}",
            m.n_items,
            m.events,
            m.off_ns,
            m.registry_ns,
            m.handles_ns,
            m.sharded_ns,
            m.windowed_ns,
            m.registry_pct,
            m.handles_pct,
            m.sharded_pct,
            m.windowed_pct,
            m.plane_pct,
            m.profile_samples,
        )
    };
    let json = format!(
        "{{\n  \"quick\": {},\n  \"profile_hz\": {PROFILE_HZ},\n  \
         \"max_sharded_overhead_pct\": {MAX_SHARDED_OVERHEAD_PCT},\n  \
         \"max_plane_overhead_pct\": {MAX_PLANE_OVERHEAD_PCT},\n  \
         \"sizes\": [\n{}\n  ]\n}}\n",
        args.quick,
        measurements
            .iter()
            .map(size_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write(&args.out, json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);

    if args.enforce {
        let largest = measurements.last().expect("at least one size");
        let mut failed = false;
        // The sharded discipline is gated against the bare loop (the
        // PR 6 budget); the live-health plane is gated against sharded,
        // the baseline it rides on — that isolates what *this* subsystem
        // costs from what the event plane beneath it already cost.
        for (variant, baseline, overhead, ceiling) in [
            (
                "sharded",
                "off",
                largest.sharded_pct,
                MAX_SHARDED_OVERHEAD_PCT,
            ),
            (
                "windowed plane",
                "sharded",
                largest.plane_pct,
                MAX_PLANE_OVERHEAD_PCT,
            ),
        ] {
            if overhead >= ceiling {
                eprintln!(
                    "FAIL: {variant} telemetry overhead {overhead:.2}% over {baseline} on the \
                     {}-item workload breaches the {ceiling}% ceiling",
                    largest.n_items
                );
                failed = true;
            } else {
                println!(
                    "enforce: {variant} telemetry overhead {overhead:.2}% over {baseline} \
                     under the {ceiling}% ceiling"
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
