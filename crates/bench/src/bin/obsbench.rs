//! Telemetry-plane overhead benchmark (registry lookups vs pre-resolved
//! handles vs thread-sharded collectors).
//!
//! Replays a coordinator-style hot loop — drift a random item, fold the
//! delta into two accumulator queries, check a staleness bound — over
//! 1k / 100k / 1M item universes, instrumented four ways:
//!
//! * **off** — the bare workload, no telemetry calls at all: the
//!   baseline every other variant is charged against;
//! * **registry** — per-event by-name lookups (`obs.counter(name)`)
//!   through the registry mutex, the naive way to instrument;
//! * **handles** — per-event increments on pre-resolved shared
//!   [`pq_obs::Counter`]/[`pq_obs::Histogram`] `Arc`s (one atomic
//!   `fetch_add` per event, no lock);
//! * **sharded** — the shipped discipline: a thread-private
//!   [`pq_obs::LocalCollector`] over interned slot ids, adds amortized
//!   over each ingestion batch, one causal [`pq_obs::Timer`] span per
//!   tick, and the sampling profiler running at ~97 Hz throughout.
//!
//! Each instrumented run must still account for every event in the
//! final snapshot (fidelity is asserted, not assumed). `--enforce`
//! additionally requires the sharded variant's overhead over `off` to
//! stay under 3% on the 1M-item workload.
//!
//! Usage: `obsbench [--quick] [--enforce] [--out PATH]`

use std::hint::black_box;
use std::time::Instant;

use pq_bench::{fmt, print_table};
use pq_obs::{names, start_profiler, Obs};

/// Overhead ceiling (percent over the uninstrumented loop) `--enforce`
/// holds the sharded plane to on the largest workload.
const MAX_SHARDED_OVERHEAD_PCT: f64 = 3.0;
/// Events folded per ingestion batch (the granularity the engine's
/// batched refresh ingestion drains at).
const BATCH: usize = 64;
/// Events per simulated tick (one recompute-batch span each).
const TICK: usize = 1024;
/// Profiler rate for the sharded variant; prime, so samples do not
/// phase-lock with the tick cadence.
const PROFILE_HZ: u32 = 97;

struct Args {
    quick: bool,
    enforce: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        enforce: false,
        out: "BENCH_obs.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--enforce" => args.enforce = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: obsbench [--quick] [--enforce] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Plain splitmix-style hash — deterministic drift with no shared RNG.
fn hash2(a: u64, b: u64) -> u64 {
    let mut s = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s ^= s >> 31;
    s
}

/// The synthetic universe: random-access item state plus per-query
/// accumulators, sized so the larger workloads leave cache and the
/// per-event cost approaches the engine's real (memory-bound) regime.
struct Workload {
    n_items: usize,
    n_queries: usize,
    events: usize,
}

impl Workload {
    fn new(n_items: usize, events: usize) -> Self {
        Workload {
            n_items,
            n_queries: (n_items / 8).max(4),
            events,
        }
    }

    fn initial(&self) -> Vec<f64> {
        (0..self.n_items).map(|i| 100.0 + (i % 50) as f64).collect()
    }
}

/// Per-event coordinator work shared by every variant: drift one item,
/// run the delta through a dependent multiply-add chain (the shape of a
/// compiled-plan fold across a query's product legs), fold the result
/// into two accumulator queries, and check a staleness bound.
#[inline]
fn step(i: u64, values: &mut [f64], qacc: &mut [f64], stale: &mut u64) {
    let h = hash2(i, 0x0B5);
    let item = (h % values.len() as u64) as usize;
    let delta = ((h >> 8) % 10_000) as f64 / 5_000.0 - 1.0;
    values[item] += delta;
    let mut fold = delta;
    for _ in 0..12 {
        fold = fold.mul_add(0.999_999_94, values[item] * 1e-9);
    }
    let q1 = ((h >> 20) % qacc.len() as u64) as usize;
    let q2 = ((h >> 40) % qacc.len() as u64) as usize;
    qacc[q1] += fold * values[item];
    qacc[q2] -= delta;
    if qacc[q1].abs() > 1e6 {
        qacc[q1] = 0.0;
        *stale += 1;
    }
}

/// Order-independent digest of the end state, for asserting that every
/// variant performed the identical workload.
fn digest(values: &[f64], qacc: &[f64], stale: u64) -> u64 {
    let sum: f64 = values.iter().sum::<f64>() + qacc.iter().sum::<f64>();
    sum.to_bits() ^ stale
}

fn run_off(w: &Workload) -> (u64, f64) {
    let mut values = w.initial();
    let mut qacc = vec![0.0; w.n_queries];
    let mut stale = 0u64;
    let started = Instant::now();
    for i in 0..w.events as u64 {
        step(i, &mut values, &mut qacc, &mut stale);
    }
    let secs = started.elapsed().as_secs_f64();
    black_box(&qacc);
    (digest(&values, &qacc, stale), secs)
}

fn run_registry(w: &Workload) -> (u64, f64) {
    let obs = Obs::null();
    let mut values = w.initial();
    let mut qacc = vec![0.0; w.n_queries];
    let mut stale = 0u64;
    let started = Instant::now();
    let mut i = 0u64;
    while (i as usize) < w.events {
        let _tick_span = obs.timed(names::SIM_RECOMPUTE_BATCH);
        let tick_end = (i as usize + TICK).min(w.events) as u64;
        while i < tick_end {
            let batch_end = (i + BATCH as u64).min(tick_end);
            let n = batch_end - i;
            while i < batch_end {
                step(i, &mut values, &mut qacc, &mut stale);
                obs.counter(names::SIM_REFRESH).inc();
                i += 1;
            }
            obs.histogram(names::INGEST_BATCH_SIZE).record(n);
        }
    }
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(
        obs.snapshot().counters[names::SIM_REFRESH],
        w.events as u64,
        "registry variant must account for every event"
    );
    (digest(&values, &qacc, stale), secs)
}

fn run_handles(w: &Workload) -> (u64, f64) {
    let obs = Obs::null();
    let c_refresh = obs.counter(names::SIM_REFRESH);
    let h_batch = obs.histogram(names::INGEST_BATCH_SIZE);
    let t_tick = obs.timer(names::SIM_RECOMPUTE_BATCH);
    let mut values = w.initial();
    let mut qacc = vec![0.0; w.n_queries];
    let mut stale = 0u64;
    let started = Instant::now();
    let mut i = 0u64;
    while (i as usize) < w.events {
        let _tick_span = t_tick.start(&obs);
        let tick_end = (i as usize + TICK).min(w.events) as u64;
        while i < tick_end {
            let batch_end = (i + BATCH as u64).min(tick_end);
            let n = batch_end - i;
            while i < batch_end {
                step(i, &mut values, &mut qacc, &mut stale);
                c_refresh.inc();
                i += 1;
            }
            h_batch.record(n);
        }
    }
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(
        obs.snapshot().counters[names::SIM_REFRESH],
        w.events as u64,
        "handles variant must account for every event"
    );
    (digest(&values, &qacc, stale), secs)
}

fn run_sharded(w: &Workload) -> (u64, f64, u64) {
    let obs = Obs::null();
    let c_refresh = obs.counter_id(names::SIM_REFRESH);
    let h_batch = obs.histogram_id(names::INGEST_BATCH_SIZE);
    let t_tick = obs.timer(names::SIM_RECOMPUTE_BATCH);
    let collector = obs.collector();
    let profiler = start_profiler(&obs, PROFILE_HZ);
    let mut values = w.initial();
    let mut qacc = vec![0.0; w.n_queries];
    let mut stale = 0u64;
    let started = Instant::now();
    let mut i = 0u64;
    while (i as usize) < w.events {
        let _tick_span = t_tick.start(&obs);
        let tick_end = (i as usize + TICK).min(w.events) as u64;
        while i < tick_end {
            let batch_end = (i + BATCH as u64).min(tick_end);
            let n = batch_end - i;
            while i < batch_end {
                step(i, &mut values, &mut qacc, &mut stale);
                i += 1;
            }
            collector.add(c_refresh, n);
            collector.record(h_batch, n);
        }
    }
    let secs = started.elapsed().as_secs_f64();
    profiler.stop();
    let snapshot = obs.snapshot();
    assert_eq!(
        snapshot.counters[names::SIM_REFRESH],
        w.events as u64,
        "sharded variant must account for every event"
    );
    let samples = snapshot
        .counters
        .get(names::PROFILE_SAMPLES)
        .copied()
        .unwrap_or(0);
    (digest(&values, &qacc, stale), secs, samples)
}

struct Measurement {
    n_items: usize,
    events: usize,
    off_ns: f64,
    registry_ns: f64,
    handles_ns: f64,
    sharded_ns: f64,
    profile_samples: u64,
}

impl Measurement {
    fn overhead_pct(&self, variant_ns: f64) -> f64 {
        100.0 * (variant_ns - self.off_ns) / self.off_ns
    }
}

fn bench_size(n_items: usize, events: usize, reps: usize) -> Measurement {
    let w = Workload::new(n_items, events);
    let (mut off_s, mut reg_s, mut han_s, mut sha_s) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut profile_samples = 0u64;
    let mut expected = None;
    // Min over repetitions: telemetry overhead is a floor property, and
    // the min strips scheduler and allocator noise from both sides.
    for _ in 0..reps {
        let (d0, s0) = run_off(&w);
        let (d1, s1) = run_registry(&w);
        let (d2, s2) = run_handles(&w);
        let (d3, s3, samples) = run_sharded(&w);
        let expected = *expected.get_or_insert(d0);
        assert!(
            d0 == expected && d1 == expected && d2 == expected && d3 == expected,
            "variants must perform the identical workload"
        );
        off_s = off_s.min(s0);
        reg_s = reg_s.min(s1);
        han_s = han_s.min(s2);
        sha_s = sha_s.min(s3);
        profile_samples = profile_samples.max(samples);
    }
    let per = |s: f64| s * 1e9 / events.max(1) as f64;
    Measurement {
        n_items,
        events,
        off_ns: per(off_s),
        registry_ns: per(reg_s),
        handles_ns: per(han_s),
        sharded_ns: per(sha_s),
        profile_samples,
    }
}

fn main() {
    let args = parse_args();
    let events = if args.quick { 1_000_000 } else { 4_000_000 };
    let reps = if args.quick { 5 } else { 7 };
    let sizes = [1_000usize, 100_000, 1_000_000];

    let measurements: Vec<Measurement> =
        sizes.iter().map(|&n| bench_size(n, events, reps)).collect();

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.n_items.to_string(),
                m.events.to_string(),
                format!("{:.1}", m.off_ns),
                format!("{:.1}", m.registry_ns),
                format!("{:.1}", m.handles_ns),
                format!("{:.1}", m.sharded_ns),
                fmt(m.overhead_pct(m.registry_ns)),
                fmt(m.overhead_pct(m.handles_ns)),
                fmt(m.overhead_pct(m.sharded_ns)),
                m.profile_samples.to_string(),
            ]
        })
        .collect();
    print_table(
        "obsbench: telemetry cost per event (ns) and overhead vs off (%)",
        &[
            "items",
            "events",
            "off",
            "registry",
            "handles",
            "sharded",
            "registry_pct",
            "handles_pct",
            "sharded_pct",
            "samples",
        ],
        &rows,
    );

    let size_json = |m: &Measurement| {
        format!(
            "    {{\n      \"n_items\": {},\n      \"events\": {},\n      \
             \"off_ns_per_event\": {:.2},\n      \
             \"registry_ns_per_event\": {:.2},\n      \
             \"handles_ns_per_event\": {:.2},\n      \
             \"sharded_ns_per_event\": {:.2},\n      \
             \"registry_overhead_pct\": {:.3},\n      \
             \"handles_overhead_pct\": {:.3},\n      \
             \"sharded_overhead_pct\": {:.3},\n      \
             \"profile_samples\": {}\n    }}",
            m.n_items,
            m.events,
            m.off_ns,
            m.registry_ns,
            m.handles_ns,
            m.sharded_ns,
            m.overhead_pct(m.registry_ns),
            m.overhead_pct(m.handles_ns),
            m.overhead_pct(m.sharded_ns),
            m.profile_samples,
        )
    };
    let json = format!(
        "{{\n  \"quick\": {},\n  \"profile_hz\": {PROFILE_HZ},\n  \
         \"max_sharded_overhead_pct\": {MAX_SHARDED_OVERHEAD_PCT},\n  \
         \"sizes\": [\n{}\n  ]\n}}\n",
        args.quick,
        measurements
            .iter()
            .map(size_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write(&args.out, json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("wrote {}", args.out);

    if args.enforce {
        let largest = measurements.last().expect("at least one size");
        let overhead = largest.overhead_pct(largest.sharded_ns);
        if overhead >= MAX_SHARDED_OVERHEAD_PCT {
            eprintln!(
                "FAIL: sharded telemetry overhead {overhead:.2}% on the {}-item \
                 workload breaches the {MAX_SHARDED_OVERHEAD_PCT}% ceiling",
                largest.n_items
            );
            std::process::exit(1);
        }
        println!(
            "enforce: sharded telemetry overhead {overhead:.2}% under the \
             {MAX_SHARDED_OVERHEAD_PCT}% ceiling"
        );
    }
}
