//! Fig. 8(b): Half-and-Half vs Different Sum on *dependent* arbitrage
//! queries (buy and sell sides share data items).
//!
//! Expected shape (paper): DS keeps its recomputation advantage even when
//! the sub-polynomials are dependent — which is why DS is the paper's
//! choice for general polynomials.

fn main() {
    pq_bench::heuristics::run_heuristic_figure(false, "Fig 8(b): dependent PQs");
}
