//! Cold vs warm GP-solve microbenchmark over the fig5 workload.
//!
//! Measures what the warm-start cache ([`pq_core::UnitCache`]) buys on the
//! steady-state recomputation load of the Fig. 5 experiment: portfolio
//! PPQs under Dual-DAB whose item values drift a little between
//! consecutive DAB recomputations.
//!
//! Three measurements, written to `BENCH_solver.json`:
//!
//! * **cold ns/solve** — `assign_unit` with no cache: compile + scalar
//!   feasible start + full barrier solve, every time;
//! * **warm ns/solve** — `assign_unit_cached` with a persistent per-unit
//!   cache: compiled-program reuse, warm start from the previous optimum,
//!   allocation-free barrier iterations;
//! * **recompute throughput** — warm recomputes/second through the
//!   bounded parallel fan-out ([`pq_core::recompute_parallel`]) at the
//!   machine's available parallelism.
//!
//! The warm-hit / warm-repair / cold-fallback counters come from the same
//! run's `pq_obs` registry.
//!
//! Usage: `solvebench [--quick] [--enforce] [--out PATH]`
//!
//! `--quick` shrinks the workload for CI; `--enforce` exits non-zero when
//! the warm speedup is below 1.5x or the warm-hit rate below 80%.

use std::time::Instant;

use pq_bench::{fmt, print_table, Scale};
use pq_core::{
    aao_program, assign_unit, assign_unit_cached, assignment_units, default_recompute_threads,
    recompute_parallel, AssignmentStrategy, AssignmentUnit, PqHeuristic, RecomputeJob, SolveCache,
    SolveContext,
};
use pq_ddm::{DataDynamicsModel, RateEstimator};
use pq_gp::{CompiledGp, GpSolution, KktMode, SolveWorkspace, SolverOptions};
use pq_obs::{names, Obs};
use pq_poly::{ItemId, PolynomialQuery};

/// Speedup floor `--enforce` holds the warm path to.
const MIN_SPEEDUP: f64 = 1.5;
/// Warm-hit floor `--enforce` holds the cache to.
const MIN_HIT_RATE: f64 = 0.8;
/// Sparse-over-dense warm speedup floor `--enforce` holds the n = 2048
/// sweep point to (the dense→sparse crossover gate).
const MIN_SPARSE_CROSSOVER: f64 = 5.0;
/// Dense/sparse per-unit solution agreement floor on the fig5 workload.
const MAX_PARITY_REL_DIFF: f64 = 1e-3;

struct Args {
    quick: bool,
    enforce: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        enforce: false,
        out: "BENCH_solver.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--enforce" => args.enforce = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument {other}; usage: solvebench [--quick] [--enforce] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Deterministic per-round multiplicative drift, small enough to model
/// the between-recomputes movement a DAB permits (a few tenths of a
/// percent per item per round). Plain LCG — no RNG state to share with
/// anything else.
fn drift_factor(round: usize, item: usize) -> f64 {
    let mut s = (round as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(item as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s ^= s >> 31;
    // Uniform in [-1, 1) scaled to +/-0.3%.
    let u = (s % 10_000) as f64 / 5_000.0 - 1.0;
    1.0 + 0.003 * u
}

fn apply_drift(values: &mut [f64], round: usize) {
    for (i, v) in values.iter_mut().enumerate() {
        *v *= drift_factor(round, i);
    }
}

struct Workload {
    units: Vec<Vec<AssignmentUnit>>,
    values0: Vec<f64>,
    rates: Vec<f64>,
    strategy: AssignmentStrategy,
    ddm: DataDynamicsModel,
    gp: SolverOptions,
}

impl Workload {
    /// Solve context with the pass's telemetry handle attached, so each
    /// pass gets its own `gp.solve_ns` histogram and `solve.*` counters.
    fn ctx<'a>(&'a self, values: &'a [f64], obs: &Obs) -> SolveContext<'a> {
        let mut gp = self.gp.clone();
        gp.obs = obs.clone();
        SolveContext {
            values,
            rates: &self.rates,
            ddm: self.ddm,
            gp,
        }
    }

    fn n_units(&self) -> usize {
        self.units.iter().map(Vec::len).sum()
    }
}

fn build_workload(quick: bool) -> Workload {
    let scale = Scale::from_env();
    let n_queries = if quick { 12 } else { 32 };
    let traces = scale.universe();
    let values0 = traces.initial_values();
    let queries = scale.workload().portfolio_queries(n_queries, &values0);
    let strategy = AssignmentStrategy::DualDab { mu: 5.0 };
    let units = queries
        .iter()
        .map(|q| assignment_units(q, strategy, PqHeuristic::DifferentSum))
        .collect();
    Workload {
        units,
        values0,
        rates: RateEstimator::SampledAverage { interval_ticks: 60 }.estimate_all(&traces),
        strategy,
        ddm: DataDynamicsModel::Monotonic,
        gp: scale.sim_gp_options(),
    }
}

/// Cold pass: every recompute pays compile + feasible start + full solve.
/// Reports the *fastest* round's ns/solve (the rounds are statistically
/// identical, so the minimum strips scheduler noise).
fn bench_cold(w: &Workload, rounds: usize, obs: &Obs) -> (f64, u64) {
    let mut values = w.values0.clone();
    let mut solves = 0u64;
    let mut best = f64::INFINITY;
    for round in 0..rounds {
        apply_drift(&mut values, round);
        let round_solves = w.n_units() as u64;
        let started = Instant::now();
        for units in &w.units {
            for u in units {
                let ctx = w.ctx(&values, obs);
                assign_unit(u, &ctx, w.strategy).expect("cold solve");
            }
        }
        best = best.min(started.elapsed().as_nanos() as f64 / round_solves as f64);
        solves += round_solves;
    }
    (best, solves)
}

/// Warm pass: identical drift sequence through persistent caches. The
/// seeding round (cold starts) runs untimed so ns/solve reflects the
/// steady state.
fn bench_warm(w: &Workload, rounds: usize, cache: &mut SolveCache, obs: &Obs) -> (f64, u64) {
    let unit_counts: Vec<usize> = w.units.iter().map(Vec::len).collect();
    cache.resize(&unit_counts);
    let mut values = w.values0.clone();
    for (qi, units) in w.units.iter().enumerate() {
        for (ui, u) in units.iter().enumerate() {
            let ctx = w.ctx(&values, &Obs::null());
            assign_unit_cached(u, &ctx, w.strategy, cache.unit_mut(qi, ui)).expect("seed solve");
        }
    }
    let mut solves = 0u64;
    let mut best = f64::INFINITY;
    for round in 0..rounds {
        apply_drift(&mut values, round);
        let round_solves = w.n_units() as u64;
        let started = Instant::now();
        for (qi, units) in w.units.iter().enumerate() {
            for (ui, u) in units.iter().enumerate() {
                let ctx = w.ctx(&values, obs);
                assign_unit_cached(u, &ctx, w.strategy, cache.unit_mut(qi, ui))
                    .expect("warm solve");
            }
        }
        best = best.min(started.elapsed().as_nanos() as f64 / round_solves as f64);
        solves += round_solves;
    }
    (best, solves)
}

/// Throughput pass: batched warm recomputes through the parallel fan-out,
/// continuing the same drift sequence on the warmed caches.
fn bench_throughput(
    w: &Workload,
    rounds: usize,
    first_round: usize,
    cache: &mut SolveCache,
    threads: usize,
    obs: &Obs,
) -> (f64, u64) {
    let mut values = w.values0.clone();
    for round in 0..first_round {
        apply_drift(&mut values, round);
    }
    let mut solves = 0u64;
    let started = Instant::now();
    for round in first_round..first_round + rounds {
        apply_drift(&mut values, round);
        let mut jobs: Vec<RecomputeJob<'_>> = Vec::with_capacity(w.n_units());
        for (qi, units) in w.units.iter().enumerate() {
            for (ui, u) in units.iter().enumerate() {
                jobs.push(RecomputeJob {
                    qi,
                    ui,
                    unit: u,
                    ctx: w.ctx(&values, obs),
                    cache: cache.take(qi, ui),
                });
            }
        }
        solves += jobs.len() as u64;
        for d in recompute_parallel(jobs, w.strategy, threads) {
            cache.put_back(d.qi, d.ui, d.cache);
            d.result.expect("throughput solve");
        }
    }
    let secs = started.elapsed().as_secs_f64();
    (solves as f64 / secs, solves)
}

// ---------------------------------------------------------------------------
// Unit-size sweep: dense→sparse crossover on AAO-structured programs
// ---------------------------------------------------------------------------
//
// Each sweep point builds one joint AAO program ([`pq_core::aao_program`])
// over `Q` two-leg portfolio queries sharing a pool of `I` items, giving
// `n = I + 5Q` GP variables (one shared `b` per item, four `c` plus one
// `R` per query). Cold solves pay the full barrier solve; warm rounds
// drift the item values, refresh the compiled program in place and
// re-solve from the previous optimum — the regime the engine lives in.
// Dense cold runs only at the small sizes (it is cubic per Newton step);
// dense warm additionally at n = 2048 for the crossover gate, seeded
// from the sparse solution so the gate never waits on a dense cold solve.

/// Recompute-rate weight of the sweep's AAO objective.
const SWEEP_MU: f64 = 5.0;

struct SweepPoint {
    n_items: usize,
    n_queries: usize,
    n_vars: usize,
    n_terms: usize,
    sparse_cold_ns: f64,
    sparse_warm_ns: f64,
    dense_cold_ns: Option<f64>,
    dense_warm_ns: Option<f64>,
}

/// `Q` two-leg portfolio queries over a pool of `I` items, wired so every
/// item is referenced and consecutive queries overlap (one connected
/// AAO unit, like a hot shard).
fn sweep_queries(n_items: usize, n_queries: usize) -> Vec<PolynomialQuery> {
    (0..n_queries)
        .map(|k| {
            let at = |o: usize| ItemId(((4 * k + o) % n_items) as u32);
            PolynomialQuery::portfolio(
                [
                    (1.5 + (k % 5) as f64 * 0.3, at(0), at(1)),
                    (1.0 + (k % 3) as f64 * 0.5, at(2), at(3)),
                ],
                40.0 + (k % 7) as f64 * 5.0,
            )
            .expect("sweep query")
        })
        .collect()
}

fn sweep_ctx<'a>(values: &'a [f64], rates: &'a [f64], gp: SolverOptions) -> SolveContext<'a> {
    SolveContext {
        values,
        rates,
        ddm: DataDynamicsModel::Monotonic,
        gp,
    }
}

fn sweep_opts(kkt: KktMode) -> SolverOptions {
    SolverOptions {
        kkt,
        ..Scale::from_env().sim_gp_options()
    }
}

/// Fastest of `reps` cold solves, plus the last solution (the warm
/// passes seed from it).
fn sweep_cold(
    queries: &[PolynomialQuery],
    values: &[f64],
    rates: &[f64],
    opts: &SolverOptions,
    reps: usize,
) -> (f64, GpSolution) {
    let ctx = sweep_ctx(values, rates, opts.clone());
    let prog = aao_program(queries, &ctx, SWEEP_MU).expect("sweep program");
    let mut best = f64::INFINITY;
    let mut sol = None;
    for _ in 0..reps {
        let started = Instant::now();
        let s = pq_gp::solve_with_start(&prog.problem, &prog.start, opts).expect("sweep cold");
        best = best.min(started.elapsed().as_nanos() as f64);
        sol = Some(s);
    }
    (best, sol.expect("at least one rep"))
}

/// Fastest warm round: drift the values, refresh the compiled program in
/// place (`update_from` keeps the cached symbolic factorization — only
/// coefficients change), warm-start from the previous optimum.
fn sweep_warm(
    queries: &[PolynomialQuery],
    values0: &[f64],
    rates: &[f64],
    opts: &SolverOptions,
    seed_x: &[f64],
    rounds: usize,
) -> f64 {
    let mut values = values0.to_vec();
    let ctx = sweep_ctx(&values, rates, opts.clone());
    let prog0 = aao_program(queries, &ctx, SWEEP_MU).expect("sweep program");
    let mut compiled = CompiledGp::compile(&prog0.problem).expect("sweep compile");
    if opts.kkt == KktMode::Sparse {
        compiled.prepare_sparse();
    }
    let mut ws = SolveWorkspace::new();
    let mut prev = seed_x.to_vec();
    let mut best = f64::INFINITY;
    for round in 0..rounds {
        apply_drift(&mut values, round);
        let ctx = sweep_ctx(&values, rates, opts.clone());
        let prog = aao_program(queries, &ctx, SWEEP_MU).expect("sweep program");
        let started = Instant::now();
        compiled.update_from(&prog.problem).expect("sweep refresh");
        let (sol, _) = compiled
            .solve_warm(&prev, &prog.start, opts, &mut ws)
            .expect("sweep warm");
        best = best.min(started.elapsed().as_nanos() as f64);
        prev = sol.x;
    }
    best
}

fn bench_sweep(quick: bool) -> Vec<SweepPoint> {
    // n = I + 5Q ∈ {128, 512, 2048, 10240}.
    let mut sizes = vec![(48usize, 16usize), (192, 64), (768, 256)];
    if !quick {
        sizes.push((3840, 1280));
    }
    let mut out = Vec::new();
    for (n_items, n_queries) in sizes {
        let queries = sweep_queries(n_items, n_queries);
        let values0: Vec<f64> = (0..n_items).map(|i| 4.0 + (i % 13) as f64).collect();
        let rates: Vec<f64> = (0..n_items).map(|i| 0.02 + 0.01 * (i % 7) as f64).collect();
        let n_vars = n_items + 5 * n_queries;
        let (cold_reps, warm_rounds) = if n_vars <= 512 { (3, 6) } else { (1, 3) };

        let sparse = sweep_opts(KktMode::Sparse);
        let (sparse_cold_ns, sparse_sol) =
            sweep_cold(&queries, &values0, &rates, &sparse, cold_reps);
        let sparse_warm_ns = sweep_warm(
            &queries,
            &values0,
            &rates,
            &sparse,
            &sparse_sol.x,
            warm_rounds,
        );

        let dense = sweep_opts(KktMode::Dense);
        let dense_cold_ns =
            (n_vars <= 512).then(|| sweep_cold(&queries, &values0, &rates, &dense, cold_reps).0);
        // Dense warm at the crossover point seeds from the *sparse*
        // solution: a dense cold solve at n = 2048 would dominate the
        // whole sweep's runtime without informing any gate.
        let dense_warm_ns = (n_vars <= 2048).then(|| {
            let rounds = if n_vars <= 512 { warm_rounds } else { 2 };
            sweep_warm(&queries, &values0, &rates, &dense, &sparse_sol.x, rounds)
        });

        let ctx = sweep_ctx(&values0, &rates, sparse.clone());
        let n_terms = aao_program(&queries, &ctx, SWEEP_MU)
            .expect("sweep program")
            .problem
            .total_terms();
        out.push(SweepPoint {
            n_items,
            n_queries,
            n_vars,
            n_terms,
            sparse_cold_ns,
            sparse_warm_ns,
            dense_cold_ns,
            dense_warm_ns,
        });
    }
    out
}

/// Worst dense-vs-sparse relative difference across the fig5 workload's
/// per-unit solutions (primary DABs and recompute rates) — the parity
/// check `--enforce` gates on.
fn fig5_parity(w: &Workload) -> f64 {
    let mut worst = 0.0f64;
    for units in &w.units {
        for u in units {
            let mut ctx_d = w.ctx(&w.values0, &Obs::null());
            ctx_d.gp.kkt = KktMode::Dense;
            let mut ctx_s = w.ctx(&w.values0, &Obs::null());
            ctx_s.gp.kkt = KktMode::Sparse;
            let d = assign_unit(u, &ctx_d, w.strategy).expect("parity dense");
            let s = assign_unit(u, &ctx_s, w.strategy).expect("parity sparse");
            for (item, bd) in &d.primary {
                let bs = s.primary[item];
                worst = worst.max((bd - bs).abs() / bd.abs().max(1e-12));
            }
            worst = worst.max(
                (d.recompute_rate - s.recompute_rate).abs() / d.recompute_rate.abs().max(1e-12),
            );
        }
    }
    worst
}

fn main() {
    let args = parse_args();
    let rounds = if args.quick { 6 } else { 20 };
    let w = build_workload(args.quick);
    let threads = default_recompute_threads();

    let diag = std::env::var("SOLVEBENCH_DIAG").is_ok();
    let (cold_obs, cold_ring) = if diag {
        let (o, r) = Obs::ring(1 << 21);
        (o, Some(r))
    } else {
        (Obs::null(), None)
    };
    let (warm_obs, warm_ring) = if diag {
        let (o, r) = Obs::ring(1 << 21);
        (o, Some(r))
    } else {
        (Obs::null(), None)
    };
    let (cold_ns, cold_solves) = bench_cold(&w, rounds, &cold_obs);
    let mut cache = SolveCache::new();
    let (warm_ns, warm_solves) = bench_warm(&w, rounds, &mut cache, &warm_obs);
    if diag {
        let dump = |tag: &str, ring: &Option<std::sync::Arc<pq_obs::RingBufferSubscriber>>| {
            let Some(r) = ring else { return };
            let (mut solves, mut outer, mut newton) = (0u64, 0u64, 0u64);
            for e in r.events() {
                if e.target == "gp.solve" {
                    solves += 1;
                    if let Some(pq_obs::Value::U64(v)) = e.field("outer") {
                        outer += v;
                    }
                    if let Some(pq_obs::Value::U64(v)) = e.field("newton_steps") {
                        newton += v;
                    }
                }
            }
            eprintln!(
                "DIAG {tag}: gp_solves={solves} avg_outer={:.2} avg_newton={:.2} dropped={}",
                outer as f64 / solves.max(1) as f64,
                newton as f64 / solves.max(1) as f64,
                r.dropped()
            );
        };
        dump("cold", &cold_ring);
        dump("warm", &warm_ring);
    }
    let (throughput, throughput_solves) =
        bench_throughput(&w, rounds, rounds, &mut cache, threads, &warm_obs);
    let sweep = bench_sweep(args.quick);
    let parity = fig5_parity(&w);

    let gp_ns = |o: &Obs| {
        o.snapshot()
            .histograms
            .get("gp.solve_ns")
            .map(|h| h.mean)
            .unwrap_or(0.0)
    };
    let cold_gp_ns = gp_ns(&cold_obs);
    let warm_gp_ns = gp_ns(&warm_obs);

    let snap = warm_obs.snapshot();
    let count = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let warm_hit = count(names::SOLVE_WARM_HIT);
    let warm_repair = count(names::SOLVE_WARM_REPAIR);
    let cold_fallback = count(names::SOLVE_COLD_FALLBACK);
    let cold_start = count(names::SOLVE_COLD_START);
    let warm_attempts = warm_hit + warm_repair + cold_fallback;
    let hit_rate = if warm_attempts > 0 {
        warm_hit as f64 / warm_attempts as f64
    } else {
        0.0
    };
    let speedup = cold_ns / warm_ns;

    print_table(
        "solvebench: cold vs warm recomputation (fig5 workload)",
        &["metric", "value"],
        &[
            vec!["cold ns/solve".into(), format!("{cold_ns:.0}")],
            vec!["warm ns/solve".into(), format!("{warm_ns:.0}")],
            vec!["speedup".into(), fmt(speedup)],
            vec!["cold gp ns/solve".into(), format!("{cold_gp_ns:.0}")],
            vec!["warm gp ns/solve".into(), format!("{warm_gp_ns:.0}")],
            vec!["cold solves".into(), cold_solves.to_string()],
            vec!["warm solves".into(), warm_solves.to_string()],
            vec!["throughput (solves/s)".into(), format!("{throughput:.0}")],
            vec!["throughput solves".into(), throughput_solves.to_string()],
            vec!["fan-out threads".into(), threads.to_string()],
            vec!["warm_hit".into(), warm_hit.to_string()],
            vec!["warm_repair".into(), warm_repair.to_string()],
            vec!["cold_fallback".into(), cold_fallback.to_string()],
            vec!["cold_start".into(), cold_start.to_string()],
            vec!["warm-hit rate".into(), fmt(hit_rate)],
        ],
    );

    let na = || "-".to_string();
    print_table(
        "solvebench: unit-size sweep (AAO programs, n = items + 5*queries)",
        &[
            "n_vars",
            "terms",
            "sparse cold ns",
            "sparse warm ns",
            "dense cold ns",
            "dense warm ns",
        ],
        &sweep
            .iter()
            .map(|p| {
                vec![
                    p.n_vars.to_string(),
                    p.n_terms.to_string(),
                    format!("{:.0}", p.sparse_cold_ns),
                    format!("{:.0}", p.sparse_warm_ns),
                    p.dense_cold_ns.map_or_else(na, |v| format!("{v:.0}")),
                    p.dense_warm_ns.map_or_else(na, |v| format!("{v:.0}")),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("fig5 dense/sparse parity: max rel diff {parity:.2e}");

    let crossover_speedup = sweep
        .iter()
        .find(|p| p.n_vars == 2048)
        .and_then(|p| p.dense_warm_ns.map(|d| d / p.sparse_warm_ns));
    if let Some(s) = crossover_speedup {
        println!("dense→sparse crossover at n=2048: sparse is {s:.1}x faster (warm)");
    }
    let dense512_cold = sweep
        .iter()
        .find(|p| p.n_vars == 512)
        .and_then(|p| p.dense_cold_ns);
    let sparse10k = sweep.iter().find(|p| p.n_vars == 10240);
    if let (Some(d512), Some(p10k)) = (dense512_cold, sparse10k) {
        println!(
            "scale check: sparse n=10240 cold {:.1} ms vs dense n=512 cold {:.1} ms ({:.2}x)",
            p10k.sparse_cold_ns / 1e6,
            d512 / 1e6,
            p10k.sparse_cold_ns / d512
        );
    }

    let sweep_json: String = sweep
        .iter()
        .map(|p| {
            let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.1}"));
            format!(
                "    {{ \"n_vars\": {}, \"n_items\": {}, \"n_queries\": {}, \"n_terms\": {}, \
                 \"sparse_cold_ns\": {:.1}, \"sparse_warm_ns\": {:.1}, \
                 \"dense_cold_ns\": {}, \"dense_warm_ns\": {} }}",
                p.n_vars,
                p.n_items,
                p.n_queries,
                p.n_terms,
                p.sparse_cold_ns,
                p.sparse_warm_ns,
                opt(p.dense_cold_ns),
                opt(p.dense_warm_ns),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"workload\": \"fig5-steady-state\",\n  \"quick\": {},\n  \
         \"cold_ns_per_solve\": {:.1},\n  \"warm_ns_per_solve\": {:.1},\n  \
         \"speedup\": {:.3},\n  \"cold_solves\": {},\n  \"warm_solves\": {},\n  \
         \"recompute_throughput_per_sec\": {:.1},\n  \"throughput_solves\": {},\n  \
         \"fanout_threads\": {},\n  \"counters\": {{\n    \
         \"solve.warm_hit\": {},\n    \"solve.warm_repair\": {},\n    \
         \"solve.cold_fallback\": {},\n    \"solve.cold_start\": {}\n  }},\n  \
         \"warm_hit_rate\": {:.4},\n  \
         \"fig5_parity_max_rel_diff\": {:.3e},\n  \
         \"sparse_crossover_speedup_2048\": {},\n  \
         \"unit_size_sweep\": [\n{}\n  ]\n}}\n",
        args.quick,
        cold_ns,
        warm_ns,
        speedup,
        cold_solves,
        warm_solves,
        throughput,
        throughput_solves,
        threads,
        warm_hit,
        warm_repair,
        cold_fallback,
        cold_start,
        hit_rate,
        parity,
        crossover_speedup.map_or("null".to_string(), |s| format!("{s:.2}")),
        sweep_json,
    );
    std::fs::write(&args.out, json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("\nwrote {}", args.out);

    if args.enforce {
        let mut failed = false;
        if speedup < MIN_SPEEDUP {
            eprintln!("FAIL: warm speedup {speedup:.2}x below the {MIN_SPEEDUP}x floor");
            failed = true;
        }
        if hit_rate < MIN_HIT_RATE {
            eprintln!(
                "FAIL: warm-hit rate {:.1}% below the {:.0}% floor",
                hit_rate * 100.0,
                MIN_HIT_RATE * 100.0
            );
            failed = true;
        }
        match crossover_speedup {
            Some(s) if s < MIN_SPARSE_CROSSOVER => {
                eprintln!(
                    "FAIL: sparse warm speedup {s:.2}x at n=2048 below the \
                     {MIN_SPARSE_CROSSOVER}x crossover floor"
                );
                failed = true;
            }
            None => {
                eprintln!("FAIL: sweep produced no n=2048 crossover measurement");
                failed = true;
            }
            _ => {}
        }
        if parity > MAX_PARITY_REL_DIFF {
            eprintln!(
                "FAIL: fig5 dense/sparse parity {parity:.2e} above the \
                 {MAX_PARITY_REL_DIFF:.0e} floor"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "enforce: speedup {speedup:.2}x, warm-hit rate {:.1}%, crossover {}x, \
             parity {parity:.1e} pass",
            hit_rate * 100.0,
            crossover_speedup.map_or("-".to_string(), |s| format!("{s:.1}")),
        );
    }
}
