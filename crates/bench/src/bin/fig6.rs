//! Fig. 6 (a–c): effect of the data-dynamics model and rate information.
//!
//! The same stock traces are replayed while the *optimizer's assumptions*
//! change: monotonic vs random-walk refresh objectives, and `lambda = 1`
//! (no rate information, the paper's "L1" curves). Reports recomputations
//! (6a), refreshes (6b) and total cost `refreshes + mu * recomputations`
//! (6c).
//!
//! Expected shape (paper): random-walk DABs are less stringent → more
//! recomputations, fewer refreshes; L1 is worse on both; but every
//! Dual-DAB variant has a far lower total cost than Optimal Refresh —
//! reliance on the ddm is low.

use pq_bench::{emit_sim_run, fmt, obs_from_env, print_table, Scale};
use pq_core::{AssignmentStrategy, PqHeuristic};
use pq_ddm::{DataDynamicsModel, RateEstimator};
use pq_sim::{run_observed, DelayConfig, SimConfig, SimStrategy};

fn main() {
    let scale = Scale::from_env();
    let obs = obs_from_env();
    let traces = scale.universe();
    struct Variant {
        name: &'static str,
        ddm: DataDynamicsModel,
        estimator: RateEstimator,
        mu: f64,
    }
    let variants = [
        Variant {
            name: "mono,mu=1",
            ddm: DataDynamicsModel::Monotonic,
            estimator: RateEstimator::SampledAverage { interval_ticks: 60 },
            mu: 1.0,
        },
        Variant {
            name: "mono,mu=5",
            ddm: DataDynamicsModel::Monotonic,
            estimator: RateEstimator::SampledAverage { interval_ticks: 60 },
            mu: 5.0,
        },
        Variant {
            name: "random,mu=1",
            ddm: DataDynamicsModel::RandomWalk,
            estimator: RateEstimator::StepStd,
            mu: 1.0,
        },
        Variant {
            name: "random,mu=5",
            ddm: DataDynamicsModel::RandomWalk,
            estimator: RateEstimator::StepStd,
            mu: 5.0,
        },
        Variant {
            name: "L1,mu=5",
            ddm: DataDynamicsModel::Monotonic,
            estimator: RateEstimator::Unit,
            mu: 5.0,
        },
    ];

    let mut rows_recomp = Vec::new();
    let mut rows_refresh = Vec::new();
    let mut rows_cost = Vec::new();
    for &n in &scale.query_counts {
        let queries = scale
            .workload()
            .portfolio_queries(n, &traces.initial_values());
        let mut recomp = vec![n.to_string()];
        let mut refresh = vec![n.to_string()];
        let mut cost = vec![n.to_string()];
        for v in &variants {
            let mut cfg = SimConfig::new(traces.clone(), queries.clone());
            cfg.gp = scale.sim_gp_options();
            cfg.strategy = SimStrategy::PerQuery {
                strategy: AssignmentStrategy::DualDab { mu: v.mu },
                heuristic: PqHeuristic::DifferentSum,
            };
            cfg.ddm = v.ddm;
            cfg.rate_estimator = v.estimator;
            cfg.delays = DelayConfig::planetlab_like();
            cfg.mu_cost = v.mu;
            let started = std::time::Instant::now();
            let m = run_observed(&cfg, &obs).unwrap_or_else(|e| panic!("{} x {n}: {e}", v.name));
            emit_sim_run(&obs, "fig6", v.name, n, &m, started);
            recomp.push(m.recomputations.to_string());
            refresh.push(m.refreshes.to_string());
            cost.push(fmt(m.total_cost(v.mu)));
        }
        rows_recomp.push(recomp);
        rows_refresh.push(refresh);
        rows_cost.push(cost);
    }

    let header: Vec<&str> = std::iter::once("queries")
        .chain(variants.iter().map(|v| v.name))
        .collect();
    print_table("Fig 6(a): total recomputations", &header, &rows_recomp);
    print_table("Fig 6(b): refreshes at coordinator", &header, &rows_refresh);
    print_table(
        "Fig 6(c): total cost = refreshes + mu * recomputations",
        &header,
        &rows_cost,
    );
    obs.flush();
}
