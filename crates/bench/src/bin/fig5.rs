//! Fig. 5 (a–c): Dual-DAB vs Optimal Refresh for portfolio PPQs.
//!
//! Sweeps the number of queries; for each strategy reports total
//! recomputations (5a), refreshes at the coordinator (5b) and loss in
//! fidelity (5c) under PlanetLab-like delays.
//!
//! Expected shape (paper): Dual-DAB reduces recomputations by >9x even at
//! mu = 1 (more at larger mu) for a small increase in refreshes, and its
//! fidelity loss is substantially lower.

use pq_bench::{
    audit_fault_from_env, audit_from_env, emit_sim_run, fmt, obs_from_env, print_table,
    slo_from_env, Scale,
};
use pq_core::{AssignmentStrategy, PqHeuristic};
use pq_sim::{run_observed, DelayConfig, SimConfig, SimStrategy};

fn main() {
    let scale = Scale::from_env();
    let obs = obs_from_env();
    let audit = audit_from_env();
    let slo = slo_from_env();
    let audit_fault = audit_fault_from_env();
    let traces = scale.universe();
    let strategies: Vec<(String, AssignmentStrategy)> = vec![
        ("optimal-refresh".into(), AssignmentStrategy::OptimalRefresh),
        (
            "dual-dab(mu=1)".into(),
            AssignmentStrategy::DualDab { mu: 1.0 },
        ),
        (
            "dual-dab(mu=5)".into(),
            AssignmentStrategy::DualDab { mu: 5.0 },
        ),
        (
            "dual-dab(mu=10)".into(),
            AssignmentStrategy::DualDab { mu: 10.0 },
        ),
    ];

    let mut rows_recomp = Vec::new();
    let mut rows_refresh = Vec::new();
    let mut rows_fidelity = Vec::new();
    for &n in &scale.query_counts {
        let queries = scale
            .workload()
            .portfolio_queries(n, &traces.initial_values());
        let mut recomp = vec![n.to_string()];
        let mut refresh = vec![n.to_string()];
        let mut fidelity = vec![n.to_string()];
        for (name, strategy) in &strategies {
            let mu_cost = strategy.mu().unwrap_or(1.0);
            let mut cfg = SimConfig::new(traces.clone(), queries.clone());
            cfg.gp = scale.sim_gp_options();
            cfg.strategy = SimStrategy::PerQuery {
                strategy: *strategy,
                heuristic: PqHeuristic::DifferentSum,
            };
            cfg.delays = DelayConfig::planetlab_like();
            cfg.mu_cost = mu_cost;
            cfg.audit = audit.clone();
            cfg.slo = slo.clone();
            cfg.audit_fault = audit_fault;
            let started = std::time::Instant::now();
            let m = run_observed(&cfg, &obs).unwrap_or_else(|e| panic!("{name} x {n}: {e}"));
            emit_sim_run(&obs, "fig5", name, n, &m, started);
            recomp.push(m.recomputations.to_string());
            refresh.push(m.refreshes.to_string());
            fidelity.push(fmt(m.loss_in_fidelity_percent()));
        }
        rows_recomp.push(recomp);
        rows_refresh.push(refresh);
        rows_fidelity.push(fidelity);
    }

    let header: Vec<&str> = std::iter::once("queries")
        .chain(strategies.iter().map(|(n, _)| n.as_str()))
        .collect();
    print_table("Fig 5(a): total recomputations", &header, &rows_recomp);
    print_table("Fig 5(b): refreshes at coordinator", &header, &rows_refresh);
    print_table("Fig 5(c): loss in fidelity (%)", &header, &rows_fidelity);
    obs.flush();
}
