//! Shared driver for the Fig. 8(a)/(b) heuristic comparisons.

use pq_core::{AssignmentStrategy, PqHeuristic};
use pq_sim::{run_observed, DelayConfig, SimConfig, SimStrategy};

use crate::{emit_sim_run, obs_from_env, print_table, Scale};

/// Runs HH vs DS over arbitrage workloads and prints the Fig. 8 series.
///
/// `independent` selects disjoint buy/sell item draws (Fig. 8(a)) versus
/// freely overlapping ones (Fig. 8(b)).
pub fn run_heuristic_figure(independent: bool, title: &str) {
    let scale = Scale::from_env();
    let obs = obs_from_env();
    // Drift-dominated traces: Fig. 8 is evaluated under the paper's
    // monotonic data-dynamics regime, where validity-range escapes
    // synchronize across items after each recomputation. (Under strongly
    // diffusive data the HH/DS recomputation ordering can flip — see
    // EXPERIMENTS.md.)
    let traces = pq_ddm::TraceSet::drifting_universe(scale.n_items, scale.n_ticks, scale.seed);
    let mus = [1.0, 5.0, 10.0];

    let mut names = Vec::new();
    for h in ["HH", "DS"] {
        for mu in mus {
            names.push(format!("{h},mu={mu}"));
        }
    }

    let mut rows_recomp = Vec::new();
    let mut rows_refresh = Vec::new();
    for &n in &scale.query_counts {
        let queries = scale
            .workload()
            .arbitrage_queries(n, &traces.initial_values(), independent);
        let mut recomp = vec![n.to_string()];
        let mut refresh = vec![n.to_string()];
        for heuristic in [PqHeuristic::HalfAndHalf, PqHeuristic::DifferentSum] {
            for &mu in &mus {
                let mut cfg = SimConfig::new(traces.clone(), queries.clone());
                cfg.gp = scale.sim_gp_options();
                cfg.strategy = SimStrategy::PerQuery {
                    strategy: AssignmentStrategy::DualDab { mu },
                    heuristic,
                };
                cfg.delays = DelayConfig::planetlab_like();
                cfg.mu_cost = mu;
                let started = std::time::Instant::now();
                let m = run_observed(&cfg, &obs)
                    .unwrap_or_else(|e| panic!("{heuristic:?} mu={mu} n={n}: {e}"));
                emit_sim_run(
                    &obs,
                    "fig8",
                    &format!("{heuristic:?},mu={mu}"),
                    n,
                    &m,
                    started,
                );
                recomp.push(m.recomputations.to_string());
                refresh.push(m.refreshes.to_string());
            }
        }
        rows_recomp.push(recomp);
        rows_refresh.push(refresh);
    }

    let header: Vec<&str> = std::iter::once("queries")
        .chain(names.iter().map(String::as_str))
        .collect();
    print_table(&format!("{title}: recomputations"), &header, &rows_recomp);
    print_table(&format!("{title}: refreshes"), &header, &rows_refresh);
    obs.flush();
}
