//! # pq-bench — experiment harnesses reproducing the paper's evaluation
//!
//! One binary per figure of §V (see DESIGN.md's per-experiment index):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig5` | Fig. 5(a–c): Dual-DAB vs Optimal Refresh for PPQs |
//! | `fig6` | Fig. 6(a–c): data-dynamics models & rate information |
//! | `fig7` | Fig. 7(a–c): EQI vs AAO-T for 10 PPQs |
//! | `fig8a` / `fig8b` | Fig. 8(a,b): HH vs DS on independent/dependent PQs |
//! | `fig8c` | Fig. 8(c): dissemination network of coordinators |
//! | `compare_related` | §V-A's DAB comparison against per-item splitting |
//! | `delay_sweep` | §V-B.1 "Effect of Varying Delays" |
//! | `ablations` | mu sensitivity, forced `c = b`, rate information |
//!
//! Each binary prints aligned ASCII tables (the paper's series) plus a CSV
//! block for plotting.
//!
//! ## Environment variables (honored uniformly by every binary)
//!
//! All harness binaries build their telemetry handle with
//! [`obs_from_env`] and their scale with [`Scale::from_env`], so the
//! same variables mean the same thing everywhere:
//!
//! | Variable | Effect |
//! |---|---|
//! | `PQ_BENCH_FULL=1` | Paper scale: 100 items, 200–1000 queries, 4000 s traces (default: quick scale) |
//! | `PQ_BENCH_SEED=n` | Base RNG seed (default `0x1CDE2008`) |
//! | `PQ_OBS_STDERR=0` | Silence the per-run `bench.run` progress lines on stderr (default: on) |
//! | `PQ_OBS_JSONL=path` | Record the **full** event trace (simulator, DAB, GP solver) as JSON Lines at `path`; analyze with `pq-trace` |
//! | `PQ_OBS_ADDR=host:port` | Serve live `/metrics` (Prometheus text) and `/snapshot` (JSON) endpoints for the run's lifetime, e.g. `127.0.0.1:9464` |
//! | `PQ_OBS_PROFILE_HZ=n` | Run the sampling profiler at `n` Hz for the process lifetime; `profile.sample` events land in the JSONL trace, rendered by `pq-trace profile` |
//! | `PQ_OBS_AUDIT=1` | Enable the continuous fidelity audit (shadow naive evaluation of sampled queries) at its defaults; see [`audit_from_env`] |
//! | `PQ_OBS_AUDIT_EVERY=n` | Audit cadence: shadow-evaluate every `n`-th tick (default 16); implies `PQ_OBS_AUDIT=1` |
//! | `PQ_OBS_AUDIT_SAMPLE=n` | Queries shadow-evaluated per audited tick, round-robin (default 4); implies `PQ_OBS_AUDIT=1` |
//! | `PQ_OBS_SLO=1` | Enable the fidelity SLO engine (windowed `*_rate_*` series on `/metrics`, burn-rate alerts on `/alerts`, verdict on `/health`); see [`slo_from_env`] |
//! | `PQ_OBS_SLO_TARGET=f` | Fidelity objective, fraction of samples inside the QAB (default 0.9); implies `PQ_OBS_SLO=1` |
//! | `PQ_OBS_RECORDER=path` | Arm the black-box flight recorder; on an SLO breach, audit divergence, watchdog stall, or panic it dumps its ring buffers as JSONL at `path` (triage with `pq-trace postmortem`) |
//! | `PQ_OBS_RECORDER_CAP=n` | Flight-recorder ring capacity in events per thread (default 4096) |
//! | `PQ_OBS_AUDIT_FAULT=tick:query:perturb` | Inject a delta-plane corruption (CI smoke for the alert → dump → postmortem path); implies `PQ_OBS_AUDIT=1` |

pub mod heuristics;

use std::sync::Arc;
use std::time::Instant;

use pq_ddm::TraceSet;
use pq_obs::{names, EventKind, Obs};
use pq_sim::SimMetrics;
use pq_workload::{WorkloadConfig, WorkloadGen};

/// Scale knobs shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Items in the universe (paper: 100).
    pub n_items: usize,
    /// Trace length in 1 s ticks (paper: 4000 on PlanetLab, 10000 emulated).
    pub n_ticks: usize,
    /// Query counts swept by the multi-query figures (paper: 200..1000).
    pub query_counts: Vec<usize>,
    /// Base RNG seed.
    pub seed: u64,
    /// Product legs per query (paper: 6-7 → 12-14 items).
    pub legs: std::ops::RangeInclusive<usize>,
}

impl Scale {
    /// Scale selected by `PQ_BENCH_FULL` / `PQ_BENCH_SEED`.
    pub fn from_env() -> Self {
        let full = std::env::var_os("PQ_BENCH_FULL").is_some_and(|v| v != "0");
        let seed = std::env::var("PQ_BENCH_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x1CDE_2008);
        if full {
            Scale {
                n_items: 100,
                n_ticks: 4000,
                query_counts: vec![200, 600, 1000],
                seed,
                legs: 6..=7,
            }
        } else {
            Scale {
                n_items: 50,
                n_ticks: 1500,
                query_counts: vec![50, 100, 150, 200],
                seed,
                legs: 3..=4,
            }
        }
    }

    /// The synthetic stock universe for this scale.
    pub fn universe(&self) -> TraceSet {
        TraceSet::stock_universe(self.n_items, self.n_ticks, self.seed)
    }

    /// GP solver options tuned for simulation-embedded recomputation: a
    /// `1e-5` duality gap is far below the precision that matters for a
    /// filter width, and a hotter barrier start cuts outer iterations.
    /// Library defaults stay rigorous; only the harnesses loosen them.
    pub fn sim_gp_options(&self) -> pq_gp::SolverOptions {
        pq_gp::SolverOptions {
            tolerance: 1e-5,
            t0: 10.0,
            mu: 30.0,
            ..pq_gp::SolverOptions::default()
        }
    }

    /// A workload generator matched to this scale.
    pub fn workload(&self) -> WorkloadGen {
        WorkloadGen::with_config(
            WorkloadConfig {
                n_items: self.n_items,
                legs: self.legs.clone(),
                ..WorkloadConfig::default()
            },
            self.seed ^ 0x517A_11AD,
        )
    }
}

/// Harness telemetry configured from the environment (see the env-var
/// table in the crate docs):
///
/// * progress lines (only `bench.*` events) render to stderr, keeping
///   stdout clean for result tables; set `PQ_OBS_STDERR=0` to silence
///   them;
/// * `PQ_OBS_JSONL=<path>` records the **full** event trace (simulator,
///   DAB and GP-solver events) as JSON Lines at `<path>`;
/// * `PQ_OBS_ADDR=<host:port>` serves live `/metrics` and `/snapshot`
///   endpoints over this handle's registry until the process exits.
///
/// Panics if the JSONL path cannot be created or the metrics address
/// cannot be bound — a harness run asked to expose telemetry must not
/// silently produce nothing.
pub fn obs_from_env() -> Obs {
    let mut sinks: Vec<Arc<dyn pq_obs::Subscriber>> = Vec::new();
    if std::env::var_os("PQ_OBS_STDERR").is_none_or(|v| v != "0") {
        sinks.push(Arc::new(pq_obs::PrefixFilter::new(
            Arc::new(pq_obs::StderrSubscriber),
            vec!["bench."],
        )));
    }
    if let Some(path) = std::env::var_os("PQ_OBS_JSONL") {
        let writer = pq_obs::JsonlWriter::create(&path)
            .unwrap_or_else(|e| panic!("PQ_OBS_JSONL={}: {e}", path.to_string_lossy()));
        sinks.push(Arc::new(writer));
    }
    let recorder = recorder_from_env().map(pq_obs::Recorder::new);
    if let Some(recorder) = &recorder {
        sinks.push(Arc::new(recorder.clone()));
    }
    let obs = match sinks.len() {
        0 => Obs::null(),
        1 => Obs::with_subscriber(sinks.pop().expect("one sink")),
        _ => Obs::with_subscriber(Arc::new(pq_obs::Fanout::new(sinks))),
    };
    if let Some(recorder) = recorder {
        recorder.install_panic_hook();
        obs.install_recorder(recorder);
    }
    if let Ok(addr) = std::env::var("PQ_OBS_ADDR") {
        pq_obs::serve::spawn(obs.clone(), addr.as_str())
            .unwrap_or_else(|e| panic!("PQ_OBS_ADDR={addr}: {e}"))
            .detach();
    }
    if let Ok(hz) = std::env::var("PQ_OBS_PROFILE_HZ") {
        let hz: u32 = hz
            .parse()
            .unwrap_or_else(|e| panic!("PQ_OBS_PROFILE_HZ={hz}: {e}"));
        pq_obs::start_profiler(&obs, hz).detach();
    }
    obs
}

/// Continuous fidelity-audit configuration from the environment, for
/// wiring into [`pq_sim::SimConfig::audit`]. Returns `Some` when any of
/// `PQ_OBS_AUDIT=1`, `PQ_OBS_AUDIT_EVERY=n`, or `PQ_OBS_AUDIT_SAMPLE=n`
/// is set; cadence/sample-size default to [`pq_sim::AuditConfig`]'s
/// defaults (every 16th tick, 4 queries round-robin). Denser sampling
/// tightens divergence-detection latency at a cost linear in naive
/// re-evaluations; the audit is read-only either way, so simulation
/// metrics are byte-identical with it on or off.
pub fn audit_from_env() -> Option<pq_sim::AuditConfig> {
    let on = std::env::var_os("PQ_OBS_AUDIT").is_some_and(|v| v != "0")
        || std::env::var_os("PQ_OBS_AUDIT_FAULT").is_some();
    let every = std::env::var("PQ_OBS_AUDIT_EVERY").ok().map(|s| {
        s.parse()
            .unwrap_or_else(|e| panic!("PQ_OBS_AUDIT_EVERY={s}: {e}"))
    });
    let sample = std::env::var("PQ_OBS_AUDIT_SAMPLE").ok().map(|s| {
        s.parse()
            .unwrap_or_else(|e| panic!("PQ_OBS_AUDIT_SAMPLE={s}: {e}"))
    });
    if !on && every.is_none() && sample.is_none() {
        return None;
    }
    let mut cfg = pq_sim::AuditConfig::default();
    if let Some(every) = every {
        cfg.every = every;
    }
    if let Some(sample) = sample {
        cfg.sample = sample;
    }
    Some(cfg)
}

/// Fidelity SLO configuration from the environment, for wiring into
/// [`pq_sim::SimConfig::slo`]. Returns `Some` when `PQ_OBS_SLO=1` or
/// `PQ_OBS_SLO_TARGET=f` is set; the target defaults to
/// [`pq_obs::SloConfig`]'s 0.9 (10% error budget), and the burn-rate
/// window pairs stay at their SRE-style defaults (5 s/1 m paging,
/// 1 m/1 h ticketing).
pub fn slo_from_env() -> Option<pq_obs::SloConfig> {
    let on = std::env::var_os("PQ_OBS_SLO").is_some_and(|v| v != "0");
    let target = std::env::var("PQ_OBS_SLO_TARGET").ok().map(|s| {
        s.parse()
            .unwrap_or_else(|e| panic!("PQ_OBS_SLO_TARGET={s}: {e}"))
    });
    if !on && target.is_none() {
        return None;
    }
    let mut cfg = pq_obs::SloConfig::default();
    if let Some(target) = target {
        cfg.target = target;
    }
    Some(cfg)
}

/// Flight-recorder configuration from the environment (`PQ_OBS_RECORDER`
/// dump path, `PQ_OBS_RECORDER_CAP` per-thread ring capacity).
/// [`obs_from_env`] consumes this itself; it is public for harnesses
/// that build their own telemetry handle.
pub fn recorder_from_env() -> Option<pq_obs::RecorderConfig> {
    let path = std::env::var_os("PQ_OBS_RECORDER")?;
    let mut cfg = pq_obs::RecorderConfig::new(std::path::PathBuf::from(path));
    if let Ok(cap) = std::env::var("PQ_OBS_RECORDER_CAP") {
        cfg.capacity = cap
            .parse()
            .unwrap_or_else(|e| panic!("PQ_OBS_RECORDER_CAP={cap}: {e}"));
    }
    Some(cfg)
}

/// Audit fault injection from `PQ_OBS_AUDIT_FAULT=tick:query:perturb`,
/// for wiring into [`pq_sim::SimConfig::audit_fault`]. CI uses this to
/// smoke-test the whole divergence → alert → flight-recorder-dump →
/// `pq-trace postmortem` path on a real run; combine with
/// `PQ_OBS_AUDIT=1` (the fault only fires under an active audit and
/// delta evaluation).
pub fn audit_fault_from_env() -> Option<pq_sim::AuditFault> {
    let spec = std::env::var("PQ_OBS_AUDIT_FAULT").ok()?;
    let parts: Vec<&str> = spec.split(':').collect();
    let [tick, query, perturb] = parts.as_slice() else {
        panic!("PQ_OBS_AUDIT_FAULT={spec}: expected tick:query:perturb");
    };
    Some(pq_sim::AuditFault {
        tick: tick
            .parse()
            .unwrap_or_else(|e| panic!("PQ_OBS_AUDIT_FAULT tick {tick}: {e}")),
        query: query
            .parse()
            .unwrap_or_else(|e| panic!("PQ_OBS_AUDIT_FAULT query {query}: {e}")),
        perturb: perturb
            .parse()
            .unwrap_or_else(|e| panic!("PQ_OBS_AUDIT_FAULT perturb {perturb}: {e}")),
    })
}

/// Emits the `bench.run` data point for one finished simulation run.
pub fn emit_sim_run(
    obs: &Obs,
    figure: &'static str,
    series: &str,
    n_queries: usize,
    m: &SimMetrics,
    started: Instant,
) {
    let series = series.to_string();
    obs.emit_with(names::BENCH_RUN, EventKind::Point, |e| {
        e.with("figure", figure)
            .with("series", series)
            .with("n_queries", n_queries)
            .with("recomputations", m.recomputations)
            .with("refreshes", m.refreshes)
            .with("loss_percent", m.loss_in_fidelity_percent())
            .with("lost_messages", m.lost_messages)
            .with("solver_s", m.solver_seconds)
            .with("wall_s", started.elapsed().as_secs_f64())
    });
}

/// Prints an aligned ASCII table followed by a machine-readable CSV block.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
    println!("\n# CSV");
    println!("{}", header.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_default() {
        // (Environment-dependent tests avoided; construct directly.)
        let s = Scale {
            n_items: 50,
            n_ticks: 1500,
            query_counts: vec![50],
            seed: 1,
            legs: 3..=4,
        };
        let u = s.universe();
        assert_eq!(u.n_items(), 50);
        assert_eq!(u.n_ticks(), 1500);
        let qs = s.workload().portfolio_queries(5, &u.initial_values());
        assert_eq!(qs.len(), 5);
    }

    #[test]
    fn fmt_has_stable_shapes() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.42), "42.4");
        assert_eq!(fmt(1.23456), "1.235");
    }
}
