//! §V-A "Solver": running-time of the DAB optimizations.
//!
//! The paper reports 40–70 ms per Dual-DAB PPQ solve (CVXOPT on a 2.66 GHz
//! P4) and 600–750 ms for AAO over 10 PPQs. These benches measure our
//! from-scratch GP solver on problems of the same shape; expect orders of
//! magnitude faster on modern hardware — the relevant reproduction is the
//! *ratio* (AAO over 10 queries costs ~10x a single Dual-DAB solve) and
//! that both are practical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pq_core::{aao, dual_dab, optimal_refresh, SolveContext};
use pq_ddm::{RateEstimator, TraceSet};
use pq_workload::{WorkloadConfig, WorkloadGen};

fn setup(n_items: usize) -> (TraceSet, Vec<f64>, Vec<f64>) {
    let traces = TraceSet::stock_universe(n_items, 600, 7);
    let values = traces.initial_values();
    let rates = RateEstimator::SampledAverage { interval_ticks: 60 }.estimate_all(&traces);
    (traces, values, rates)
}

fn workload(n_items: usize) -> WorkloadGen {
    WorkloadGen::with_config(
        WorkloadConfig {
            n_items,
            ..WorkloadConfig::default()
        },
        99,
    )
}

fn bench_single_ppq(c: &mut Criterion) {
    let (_traces, values, rates) = setup(100);
    // The paper's PPQ shape: 12-14 items (6-7 legs).
    let query = workload(100).portfolio_queries(1, &values).remove(0);
    let ctx = SolveContext::new(&values, &rates);

    c.bench_function("dual_dab/ppq-13-items", |b| {
        b.iter(|| dual_dab(&query, &ctx, 5.0).unwrap())
    });
    c.bench_function("optimal_refresh/ppq-13-items", |b| {
        b.iter(|| optimal_refresh(&query, &ctx).unwrap())
    });
}

fn bench_aao(c: &mut Criterion) {
    let (_traces, values, rates) = setup(100);
    let ctx = SolveContext::new(&values, &rates);
    let mut group = c.benchmark_group("aao");
    group.sample_size(10);
    for n_queries in [2usize, 5, 10] {
        let queries = workload(100).portfolio_queries(n_queries, &values);
        group.bench_with_input(
            BenchmarkId::from_parameter(n_queries),
            &queries,
            |b, queries| b.iter(|| aao(queries, &ctx, 5.0).unwrap()),
        );
    }
    group.finish();
}

fn bench_query_size_scaling(c: &mut Criterion) {
    let (_traces, values, rates) = setup(100);
    let ctx = SolveContext::new(&values, &rates);
    let mut group = c.benchmark_group("dual_dab_scaling");
    for legs in [2usize, 4, 8, 16] {
        let query = WorkloadGen::with_config(
            WorkloadConfig {
                n_items: 100,
                legs: legs..=legs,
                ..WorkloadConfig::default()
            },
            5,
        )
        .portfolio_queries(1, &values)
        .remove(0);
        group.bench_with_input(BenchmarkId::from_parameter(legs), &query, |b, q| {
            b.iter(|| dual_dab(q, &ctx, 5.0).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_ppq,
    bench_aao,
    bench_query_size_scaling
);
criterion_main!(benches);
