//! Property tests for the cross-query shared evaluation plan.
//!
//! [`SharedPlan`] defines its own deterministic float semantics: every
//! distinct monomial is computed once (coefficient-free) and scattered
//! as `c_q · m` per subscription, so it cannot promise bit-identity
//! with the per-query [`EvalPlan`] (which folds coefficients first).
//! What it does promise, checked here across random books:
//!
//! * full evaluation and long delta-maintained walks (with rebases
//!   interleaved at random cadences) track the per-query plans within
//!   the engine's `1e-9 · (1 + |v|)` tolerance at every step;
//! * its own semantics are *bit-deterministic*: permuting the book, or
//!   reaching the same live set through admit/retire churn (with or
//!   without compaction), reproduces every query value bit-for-bit
//!   against a fresh compile;
//! * retired slots pin to exactly `0.0` and never receive deltas, and
//!   items outside the book scatter nothing.

use proptest::prelude::*;

use pq_poly::{EvalPlan, ItemId, PTerm, Polynomial, SharedPlan};

const N_ITEMS: usize = 6;

fn x(i: u32) -> ItemId {
    ItemId(i)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + b.abs())
}

/// Arbitrary sparse polynomial over `N_ITEMS` items, same shape space
/// as `proptest_plan.rs`: up to two factors `x_i^e`, `e in 1..=2`.
fn arb_poly() -> impl Strategy<Value = Polynomial> {
    proptest::collection::vec(
        (
            (-20.0f64..20.0).prop_filter("nonzero", |c| c.abs() > 1e-3),
            proptest::collection::vec((0u32..N_ITEMS as u32, 1u32..=2), 0..=2),
        ),
        1..8,
    )
    .prop_map(|terms| {
        Polynomial::from_terms(
            terms
                .into_iter()
                .map(|(c, vars)| PTerm::new(c, vars.into_iter().map(|(i, e)| (x(i), e))).unwrap()),
        )
    })
    .prop_filter("non-zero polynomial", |p| !p.is_zero())
}

/// A small book of overlapping queries — the regime CSE exists for.
fn arb_book() -> impl Strategy<Value = Vec<Polynomial>> {
    proptest::collection::vec(arb_poly(), 1..6)
}

/// A random walk: which item moves, and the value it moves to.
fn arb_updates(len: usize) -> impl Strategy<Value = Vec<(usize, f64)>> {
    proptest::collection::vec((0..N_ITEMS, -10.0f64..10.0), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Shared full evaluation agrees with every per-query compiled plan
    /// within the engine tolerance, and the scatter covers every live
    /// subscription of the book.
    #[test]
    fn shared_full_eval_tracks_per_query_plans(
        book in arb_book(),
        v in proptest::collection::vec(-10.0f64..10.0, N_ITEMS),
    ) {
        let plan = SharedPlan::compile(book.iter());
        let (mut scratch, mut qv) = (Vec::new(), Vec::new());
        plan.full_eval_into(&v, &mut scratch, &mut qv);
        prop_assert_eq!(qv.len(), book.len());
        prop_assert!(plan.n_terms() <= plan.scatter_fanout());
        for (qi, p) in book.iter().enumerate() {
            let compiled = EvalPlan::compile(p).eval(&v);
            prop_assert!(
                close(qv[qi], compiled),
                "q{}: shared {} vs per-query {}", qi, qv[qi], compiled
            );
        }
    }

    /// Shared semantics are bit-deterministic under book permutation:
    /// the distinct-monomial values and every per-query value are
    /// reproduced bit-for-bit when the book is rotated.
    #[test]
    fn shared_eval_is_bit_invariant_under_permutation(
        book in arb_book(),
        rot in 0usize..6,
        v in proptest::collection::vec(-10.0f64..10.0, N_ITEMS),
    ) {
        let rot = rot % book.len();
        let mut rotated: Vec<&Polynomial> = book.iter().collect();
        rotated.rotate_left(rot);
        let plan = SharedPlan::compile(book.iter());
        let plan_r = SharedPlan::compile(rotated.iter().copied());
        let (mut s1, mut qv1) = (Vec::new(), Vec::new());
        let (mut s2, mut qv2) = (Vec::new(), Vec::new());
        plan.full_eval_into(&v, &mut s1, &mut qv1);
        plan_r.full_eval_into(&v, &mut s2, &mut qv2);
        prop_assert_eq!(plan.n_terms(), plan_r.n_terms());
        for (qi, &q1) in qv1.iter().enumerate() {
            let ri = (qi + book.len() - rot) % book.len();
            prop_assert_eq!(
                q1.to_bits(), qv2[ri].to_bits(),
                "q{} (rotated slot {}): {} vs {}", qi, ri, q1, qv2[ri]
            );
        }
    }

    /// A long delta-scattered walk with rebases interleaved at a random
    /// cadence tracks the per-query plans within tolerance at every
    /// step, including the steps straddling rebase boundaries.
    #[test]
    fn shared_delta_walk_with_rebases_tracks_per_query_plans(
        book in arb_book(),
        v0 in proptest::collection::vec(-10.0f64..10.0, N_ITEMS),
        updates in arb_updates(150),
        rebase_every in 1usize..48,
    ) {
        let plan = SharedPlan::compile(book.iter());
        let plans: Vec<EvalPlan> = book.iter().map(EvalPlan::compile).collect();
        let mut v = v0;
        let (mut scratch, mut qv) = (Vec::new(), Vec::new());
        plan.full_eval_into(&v, &mut scratch, &mut qv);
        for (step, &(item, new)) in updates.iter().enumerate() {
            let old = v[item];
            plan.delta_scatter(&v, x(item as u32), old, new, &mut qv);
            v[item] = new;
            for (qi, p) in plans.iter().enumerate() {
                let full = p.eval(&v);
                prop_assert!(
                    close(qv[qi], full),
                    "step {} q{}: shared {} vs per-query {}", step, qi, qv[qi], full
                );
            }
            if (step + 1) % rebase_every == 0 {
                // The engine's periodic rebase: a fresh shared full
                // evaluation, bit-identical to a from-scratch pass.
                plan.full_eval_into(&v, &mut scratch, &mut qv);
                let (mut s, mut fresh) = (Vec::new(), Vec::new());
                SharedPlan::compile(book.iter()).full_eval_into(&v, &mut s, &mut fresh);
                for qi in 0..book.len() {
                    prop_assert_eq!(qv[qi].to_bits(), fresh[qi].to_bits());
                }
            }
        }
    }

    /// Any admit/retire churn sequence that lands on a given live set
    /// reproduces a fresh compile of that set bit-for-bit — before and
    /// after compaction — and the walk stays within tolerance after
    /// churn (deltas dispatch through the overlays).
    #[test]
    fn churned_plan_is_bit_identical_to_fresh_compile(
        book in arb_book(),
        admissions in proptest::collection::vec(arb_poly(), 1..4),
        retire_picks in proptest::collection::vec(0usize..8, 1..4),
        v in proptest::collection::vec(-10.0f64..10.0, N_ITEMS),
        updates in arb_updates(20),
        compact_pick in 0usize..2,
    ) {
        let mut plan = SharedPlan::compile(book.iter());
        // Live set as (slot, polynomial), kept in slot order.
        let mut live: Vec<(u32, Polynomial)> = book
            .iter()
            .cloned()
            .enumerate()
            .map(|(s, p)| (s as u32, p))
            .collect();
        let mut ops = admissions.into_iter();
        for pick in retire_picks {
            // Interleave: retire one live query, then admit a new one
            // (slot reuse exercises the tombstone free list).
            if !live.is_empty() {
                let victim = pick % live.len();
                let (slot, _) = live.remove(victim);
                prop_assert!(plan.retire(slot));
            }
            if let Some(p) = ops.next() {
                let slot = plan.admit(&p);
                let at = live.partition_point(|&(s, _)| s < slot);
                live.insert(at, (slot, p));
            }
        }
        if compact_pick == 1 {
            plan.compact();
        }
        prop_assert_eq!(plan.live_queries(), live.len());

        let fresh = SharedPlan::compile(live.iter().map(|(_, p)| p));
        let (mut s1, mut qv1) = (Vec::new(), Vec::new());
        let (mut s2, mut qv2) = (Vec::new(), Vec::new());
        plan.full_eval_into(&v, &mut s1, &mut qv1);
        fresh.full_eval_into(&v, &mut s2, &mut qv2);
        for (fi, &(slot, _)) in live.iter().enumerate() {
            prop_assert_eq!(
                qv1[slot as usize].to_bits(), qv2[fi].to_bits(),
                "slot {}: churned {} vs fresh {}", slot, qv1[slot as usize], qv2[fi]
            );
        }
        // Retired slots pin to exactly zero and stay there under deltas.
        let live_slots: Vec<usize> = live.iter().map(|&(s, _)| s as usize).collect();
        let mut v = v;
        for &(item, new) in &updates {
            let old = v[item];
            plan.delta_scatter(&v, x(item as u32), old, new, &mut qv1);
            v[item] = new;
        }
        for (slot, qv) in qv1.iter().enumerate() {
            if live_slots.binary_search(&slot).is_err() {
                prop_assert_eq!(*qv, 0.0, "retired slot {} drifted", slot);
            }
        }
        for &(slot, ref p) in &live {
            let full = p.eval(&v);
            prop_assert!(
                close(qv1[slot as usize], full),
                "slot {} after churned walk: {} vs {}", slot, qv1[slot as usize], full
            );
        }
    }

    /// Items the book never references scatter nothing: zero fan-out,
    /// zero cost, and untouched query values.
    #[test]
    fn foreign_items_scatter_nothing(
        book in arb_book(),
        v in proptest::collection::vec(-10.0f64..10.0, N_ITEMS),
        old in -10.0f64..10.0,
        new in -10.0f64..10.0,
    ) {
        let plan = SharedPlan::compile(book.iter());
        let foreign = x(N_ITEMS as u32 + 1);
        let (mut scratch, mut qv) = (Vec::new(), Vec::new());
        plan.full_eval_into(&v, &mut scratch, &mut qv);
        let before = qv.clone();
        prop_assert_eq!(plan.delta_cost(foreign), 0);
        prop_assert_eq!(plan.delta_scatter(&v, foreign, old, new, &mut qv), 0);
        prop_assert_eq!(qv, before);
    }
}
