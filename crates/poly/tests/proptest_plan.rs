//! Property tests for compiled evaluation plans and delta maintenance.
//!
//! The simulator's incremental views rest on two properties checked
//! here across random sparse polynomials up to degree 4:
//!
//! * [`EvalPlan::eval`] is *bit-identical* to the naive
//!   [`Polynomial::eval`], so switching to the compiled path can never
//!   flip a QAB comparison;
//! * a long random sequence of [`EvalPlan::delta_eval`] updates folded
//!   into a running sum (with rebases interleaved, as the engine does
//!   every `rebase_every` ticks) stays within tolerance of a fresh
//!   naive evaluation.

use proptest::prelude::*;

use pq_poly::{EvalPlan, ItemId, PTerm, Polynomial};

const N_ITEMS: usize = 6;

fn x(i: u32) -> ItemId {
    ItemId(i)
}

/// Arbitrary sparse polynomial over `N_ITEMS` items with per-term total
/// degree <= 4: up to three factors, each `x_i^e` with `e in 1..=2`
/// (duplicate items merge, so shapes span constants through degree-4
/// `General` terms).
fn arb_poly() -> impl Strategy<Value = Polynomial> {
    proptest::collection::vec(
        (
            (-20.0f64..20.0).prop_filter("nonzero", |c| c.abs() > 1e-3),
            proptest::collection::vec((0u32..N_ITEMS as u32, 1u32..=2), 0..=2),
        ),
        1..8,
    )
    .prop_map(|terms| {
        Polynomial::from_terms(
            terms
                .into_iter()
                .map(|(c, vars)| PTerm::new(c, vars.into_iter().map(|(i, e)| (x(i), e))).unwrap()),
        )
    })
    .prop_filter("non-zero polynomial", |p| !p.is_zero())
}

/// A random walk: which item moves, and the value it moves to.
fn arb_updates(len: usize) -> impl Strategy<Value = Vec<(usize, f64)>> {
    proptest::collection::vec((0..N_ITEMS, -10.0f64..10.0), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Full compiled evaluation returns the exact same bits as naive.
    #[test]
    fn compiled_eval_is_bit_identical_to_naive(
        p in arb_poly(),
        v in proptest::collection::vec(-10.0f64..10.0, N_ITEMS),
    ) {
        let plan = EvalPlan::compile(&p);
        prop_assert!(plan.degree() <= 4);
        let compiled = plan.eval(&v);
        let naive = p.eval(&v);
        prop_assert_eq!(
            compiled.to_bits(), naive.to_bits(),
            "compiled {} vs naive {}", compiled, naive
        );
    }

    /// A long delta-maintained running sum with interleaved rebases
    /// tracks fresh naive evaluation within tolerance at every step.
    #[test]
    fn delta_sequence_with_rebases_tracks_naive(
        p in arb_poly(),
        v0 in proptest::collection::vec(-10.0f64..10.0, N_ITEMS),
        updates in arb_updates(200),
        rebase_every in 1usize..64,
    ) {
        let mut v = v0;
        let plan = EvalPlan::compile(&p);
        let mut running = plan.eval(&v);
        for (step, &(item, new)) in updates.iter().enumerate() {
            let old = v[item];
            running += plan.delta_eval(&v, x(item as u32), old, new);
            v[item] = new;
            let naive = p.eval(&v);
            prop_assert!(
                (running - naive).abs() <= 1e-9 * (1.0 + naive.abs()),
                "step {}: running {} vs naive {}", step, running, naive
            );
            if (step + 1) % rebase_every == 0 {
                // The engine's periodic rebase: replace the running sum
                // with a fresh full evaluation (bit-identical to naive).
                running = plan.eval(&v);
                prop_assert_eq!(running.to_bits(), naive.to_bits());
            }
        }
    }

    /// Deltas touch exactly the terms containing the item: items the
    /// polynomial never references produce a delta of exactly zero.
    #[test]
    fn foreign_items_produce_zero_delta(
        p in arb_poly(),
        v in proptest::collection::vec(-10.0f64..10.0, N_ITEMS + 2),
        old in -10.0f64..10.0,
        new in -10.0f64..10.0,
    ) {
        let plan = EvalPlan::compile(&p);
        let foreign = x(N_ITEMS as u32 + 1);
        prop_assert_eq!(plan.terms_for(foreign), &[] as &[u32]);
        prop_assert_eq!(plan.delta_eval(&v, foreign, old, new), 0.0);
    }
}
