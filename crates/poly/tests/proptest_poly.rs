//! Property tests for polynomial algebra and constraint construction.

use proptest::prelude::*;

use pq_poly::{
    coupled_items, deviation_posynomial, parse_polynomial, DabVarMap, ItemCatalog, ItemId, PTerm,
    PartialDabVarMap, Polynomial,
};

fn x(i: u32) -> ItemId {
    ItemId(i)
}

/// Arbitrary polynomial over 4 items with degrees <= 3, mixed signs.
fn arb_poly() -> impl Strategy<Value = Polynomial> {
    proptest::collection::vec(
        (
            (-20.0f64..20.0).prop_filter("nonzero", |c| c.abs() > 1e-3),
            0u32..4,
            1u32..3,
            proptest::option::of((0u32..4, 1u32..2)),
        ),
        1..5,
    )
    .prop_map(|terms| {
        Polynomial::from_terms(terms.into_iter().map(|(c, v, e, second)| {
            let mut vars = vec![(x(v), e)];
            if let Some((v2, e2)) = second {
                vars.push((x(v2), e2));
            }
            PTerm::new(c, vars).unwrap()
        }))
    })
    .prop_filter("non-zero polynomial", |p| !p.is_zero())
}

fn arb_positive_poly() -> impl Strategy<Value = Polynomial> {
    arb_poly().prop_map(|p| {
        let (p1, p2) = p.split_pos_neg();
        let q = p1.add(&p2);
        if q.is_zero() {
            Polynomial::term(PTerm::new(1.0, [(x(0), 1)]).unwrap())
        } else {
            q
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Addition/subtraction/scaling agree with pointwise evaluation.
    #[test]
    fn ring_operations_commute_with_eval(
        a in arb_poly(),
        b in arb_poly(),
        alpha in -5.0f64..5.0,
        v in proptest::collection::vec(0.1f64..10.0, 4),
    ) {
        let scale = |r: f64| r.abs().max(1.0);
        let sum = a.add(&b);
        prop_assert!((sum.eval(&v) - (a.eval(&v) + b.eval(&v))).abs()
            <= 1e-9 * scale(sum.eval(&v)));
        let diff = a.sub(&b);
        prop_assert!((diff.eval(&v) - (a.eval(&v) - b.eval(&v))).abs()
            <= 1e-9 * scale(diff.eval(&v)));
        let prod = a.mul(&b);
        prop_assert!((prod.eval(&v) - a.eval(&v) * b.eval(&v)).abs()
            <= 1e-6 * scale(prod.eval(&v)));
        let scaled = a.scale(alpha);
        prop_assert!((scaled.eval(&v) - alpha * a.eval(&v)).abs()
            <= 1e-9 * scale(scaled.eval(&v)));
    }

    /// split_pos_neg always produces positive-coefficient halves that
    /// recombine exactly.
    #[test]
    fn split_halves_are_positive_and_recombine(
        p in arb_poly(),
        v in proptest::collection::vec(0.1f64..10.0, 4),
    ) {
        let (p1, p2) = p.split_pos_neg();
        prop_assert!(p1.is_positive_coefficient());
        prop_assert!(p2.is_positive_coefficient());
        prop_assert!(p1.sub(&p2).sub(&p).is_zero());
        let lhs = p1.eval(&v) - p2.eval(&v);
        prop_assert!((lhs - p.eval(&v)).abs() <= 1e-9 * lhs.abs().max(1.0));
    }

    /// The single-DAB deviation posynomial equals the exact corner-search
    /// worst case for positive polynomials.
    #[test]
    fn deviation_equals_corner_search(
        p in arb_positive_poly(),
        v in proptest::collection::vec(0.1f64..10.0, 4),
        widths in proptest::collection::vec(0.01f64..2.0, 4),
    ) {
        let vmap = DabVarMap::for_polynomial(&p, false);
        let g = deviation_posynomial(&p, &v, &vmap).unwrap();
        let bvec: Vec<f64> = vmap.items().iter().map(|i| widths[i.index()]).collect();
        let mut dabs = [0.0; 4];
        for &i in vmap.items() {
            dabs[i.index()] = widths[i.index()];
        }
        let exact = p.max_abs_deviation_over_box(&v, &dabs);
        let symbolic = g.eval(&bvec);
        prop_assert!((exact - symbolic).abs() <= 1e-7 * exact.abs().max(1.0),
            "corner {exact} vs symbolic {symbolic}");
    }

    /// With secondary DABs, the expansion evaluates exactly to
    /// `P(V + c + b) - P(V + c)` for any positive widths.
    #[test]
    fn dual_deviation_matches_direct_difference(
        p in arb_positive_poly(),
        v in proptest::collection::vec(0.5f64..10.0, 4),
        b in proptest::collection::vec(0.01f64..1.0, 4),
        c in proptest::collection::vec(0.01f64..2.0, 4),
    ) {
        let vmap = PartialDabVarMap::for_polynomial(&p);
        let g = deviation_posynomial(&p, &v, &vmap).unwrap();
        let n = vmap.n_items();
        let mut point = vec![0.0; vmap.n_vars()];
        for (k, &item) in vmap.items().iter().enumerate() {
            point[k] = b[item.index()];
        }
        for (j, &item) in vmap.coupled().iter().enumerate() {
            point[n + j] = c[item.index()];
        }
        // Direct difference: uncoupled items shift only by b; coupled by
        // b + c in the "up" state and by c in the reference state.
        let coupled = coupled_items(&p);
        let mut up = v.clone();
        let mut mid = v.clone();
        for &item in vmap.items() {
            let i = item.index();
            let is_coupled = coupled.binary_search(&item).is_ok();
            let ci = if is_coupled { c[i] } else { 0.0 };
            up[i] = v[i] + ci + b[i];
            mid[i] = v[i] + ci;
        }
        let direct = p.eval(&up) - p.eval(&mid);
        let symbolic = g.eval(&point);
        prop_assert!((direct - symbolic).abs() <= 1e-7 * direct.abs().max(1.0),
            "direct {direct} vs symbolic {symbolic}");
    }

    /// Display -> parse round-trips polynomials (structure-preserving up to
    /// evaluation).
    #[test]
    fn display_parse_round_trip(
        p in arb_poly(),
        v in proptest::collection::vec(0.1f64..10.0, 4),
    ) {
        let rendered = format!("{p}");
        let mut cat = ItemCatalog::new();
        // Pre-intern x0..x3 so ids line up with the originals.
        for i in 0..4 {
            cat.intern(&format!("x{i}"));
        }
        let reparsed = parse_polynomial(&rendered, &mut cat).unwrap();
        let a = p.eval(&v);
        let b = reparsed.eval(&v);
        prop_assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0),
            "rendered {rendered}: {a} vs {b}");
    }
}
