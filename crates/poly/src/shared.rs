//! Cross-query shared-term evaluation: one compiled plan per query *book*.
//!
//! The paper's workloads overlap heavily in monomials — the same
//! portfolio leg `x_i·x_j` appears in many queries — yet a per-query
//! [`crate::EvalPlan`] compiles and delta-maintains every occurrence
//! separately, so memory and per-refresh work scale with *total* terms
//! rather than *distinct* terms. A [`SharedPlan`] applies DBToaster's
//! higher-order-delta idea at the query-set level: maintain each
//! distinct monomial once and scatter its delta to every subscribing
//! query with one fused multiply-add per subscription.
//!
//! # Compiler pipeline
//!
//! [`SharedPlan::compile`] runs a staged `parse → analyze → optimize →
//! plan` pipeline over the whole book:
//!
//! 1. **parse** — normalize each polynomial into a constant part plus a
//!    list of `(canonical key, coefficient)` monomials. A canonical key
//!    is the sorted `(item, exponent)` factor vector ([`crate::PTerm`]
//!    already stores factors sorted and merged).
//! 2. **analyze** — intern every key into a distinct-monomial set
//!    (common-subexpression elimination across queries) and record each
//!    query's subscriptions.
//! 3. **optimize** — order the distinct set canonically (lexicographic
//!    by key) so the emitted plan is identical for any permutation of
//!    the same book, and classify each monomial into the unrolled
//!    degree-1/2 kernel shapes of [`crate::EvalPlan`].
//! 4. **plan** — emit flat SoA storage: per-term kernel tags, a CSR
//!    item → term index for delta dispatch, and a CSR term → query
//!    scatter with per-subscription coefficients.
//!
//! # Floating-point contract
//!
//! A shared monomial is computed **without** any query's coefficient,
//! so a subscribing query's contribution rounds as `c * (x_i * x_j)` —
//! not the `(c * x_i) * x_j` of the naive/per-query paths. Shared
//! evaluation therefore defines its *own* deterministic semantics
//! rather than bit-matching [`crate::Polynomial::eval`]:
//!
//! * **Deterministic & permutation-invariant.** Full evaluation of a
//!   query is `const + Σ c_t · m_t` in the query's own term order;
//!   deltas scatter in canonical term order. Both depend only on the
//!   query and the values, never on book composition, admission
//!   history, or compaction — compiling a permuted book, or reaching
//!   the same book through admit/retire churn, yields bit-identical
//!   query values.
//! * **Within one extra rounding per term of naive.** Each term
//!   contributes one product reassociation; query values agree with the
//!   per-query plans to relative `~n_terms × ulp`, many orders of
//!   magnitude inside any meaningful QAB (enforced by the property
//!   tests and, end-to-end, by the evalbench violation-parity gate).
//!
//! # Incremental admission & retirement
//!
//! [`SharedPlan::admit`] and [`SharedPlan::retire`] patch the scatter
//! instead of recompiling the book: genuinely new monomials append at
//! the SoA/CSR tail, subscriptions to *existing* monomials land in a
//! per-term overlay (one branch on a dense bitset in the hot loop), and
//! retirement tombstones flat subscriptions in place. Once overlay plus
//! tombstone volume passes a fraction of the flat scatter, the plan
//! compacts back to pure CSR — term ids are stable across all of this,
//! so downstream views never rebuild. This is the plan-level
//! item→term/term→query index hoisted out of the hot path and
//! invalidated only on query churn.

use std::collections::HashMap;

use crate::item::ItemId;
use crate::polynomial::Polynomial;

/// Canonical monomial key: the sorted `(item, exponent)` factor vector.
type TermKey = Vec<(u32, u32)>;

/// Tombstone marker for a retired flat subscription.
const DEAD: u32 = u32::MAX;

/// Per-subscription partitioner load relative to one distinct-monomial
/// kernel evaluation: a subscription costs one fused multiply-add on
/// the scatter, a fresh monomial a full kernel evaluation per delta.
const SUB_LOAD: f64 = 0.25;

/// Kernel shape of one distinct monomial (coefficient-free: the
/// coefficients live on the term → query scatter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SharedKind {
    /// `x_i`
    Linear { i: u32 },
    /// `x_i^2`
    Square { i: u32 },
    /// `x_i * x_j` with `i < j` (a portfolio/arbitrage leg).
    Bilinear { i: u32, j: u32 },
    /// General product over `factors[start..end]`.
    General { start: u32, end: u32 },
}

/// One query normalized by the parse stage: folded constant plus
/// `(canonical key, coefficient)` monomials in the query's term order.
struct QueryIr {
    const_base: f64,
    terms: Vec<(TermKey, f64)>,
}

/// A whole query book compiled for shared evaluation and delta
/// maintenance. See the module docs for the pipeline and the
/// floating-point contract.
///
/// ```
/// use pq_poly::{parse_polynomial, ItemCatalog, SharedPlan};
/// let mut cat = ItemCatalog::new();
/// let q0 = parse_polynomial("2*x0*x1 + x2", &mut cat).unwrap();
/// let q1 = parse_polynomial("5*x0*x1 - 1", &mut cat).unwrap();
/// let plan = SharedPlan::compile([&q0, &q1]);
/// // x0*x1 is shared: 3 subscriptions over 2 distinct monomials.
/// assert_eq!(plan.n_terms(), 2);
/// assert_eq!(plan.scatter_fanout(), 3);
///
/// let mut values = vec![3.0, 4.0, 5.0];
/// let mut qv = vec![0.0; 2];
/// let mut scratch = Vec::new();
/// plan.full_eval_into(&values, &mut scratch, &mut qv);
/// assert_eq!(qv, vec![29.0, 59.0]);
///
/// // x1: 4 -> 6 updates both subscribers of x0*x1 in one pass.
/// let fanout = plan.delta_scatter(&values, pq_poly::ItemId(1), 4.0, 6.0, &mut qv);
/// values[1] = 6.0;
/// assert_eq!(fanout, 2);
/// assert_eq!(qv, vec![q0.eval(&values), q1.eval(&values)]);
/// ```
#[derive(Debug, Clone)]
pub struct SharedPlan {
    /// Per-distinct-monomial kernel tag, canonical order then admission
    /// order. Term ids are stable for the lifetime of the plan.
    kinds: Vec<SharedKind>,
    /// Flat `(item, exponent)` factors for `General` kernels only.
    factors: Vec<(u32, u32)>,
    /// Canonical key → term id, for CSE on admission.
    key_index: HashMap<TermKey, u32>,

    /// CSR item → term: `index_terms[index_starts[i]..index_starts[i+1]]`
    /// are the terms containing item `i` (compile-time universe only;
    /// admitted terms live in the overlay until compaction).
    index_starts: Vec<u32>,
    index_terms: Vec<u32>,
    /// Admission overlay of the item → term index.
    index_overlay: HashMap<u32, Vec<u32>>,
    /// Dense guard for the overlay lookup, indexed by item.
    item_overlaid: Vec<bool>,

    /// CSR term → subscriptions: queries and coefficients in
    /// `sub_starts[t]..sub_starts[t+1]`. `sub_query[k] == u32::MAX`
    /// marks a retired (tombstoned) subscription.
    sub_starts: Vec<u32>,
    sub_query: Vec<u32>,
    sub_coef: Vec<f64>,
    /// Admission overlay: subscriptions added to pre-existing terms.
    sub_overlay: HashMap<u32, Vec<(u32, f64)>>,
    /// Dense guard for the overlay lookup, indexed by term.
    term_overlaid: Vec<bool>,
    /// Live subscriptions per term (flat + overlay); a zero row skips
    /// the kernel entirely on delta dispatch.
    sub_live: Vec<u32>,
    /// Tombstoned flat subscriptions / overlay subscriptions, driving
    /// the compaction threshold.
    dead_subs: usize,
    overlay_subs: usize,

    /// Per-query subscription registry `(term, coef)` in the query's
    /// own term order (drives full evaluation and retirement).
    query_terms: Vec<Vec<(u32, f64)>>,
    /// Per-query folded constant.
    const_base: Vec<f64>,
    /// Whether each slot currently holds a live query.
    live_query: Vec<bool>,
    /// Retired slots available for reuse by [`SharedPlan::admit`].
    free_slots: Vec<u32>,

    /// Minimum length a `values` slice must have.
    n_values: usize,
    /// Maximum total degree across distinct monomials.
    degree: u32,
}

impl SharedPlan {
    /// Compiles a query book through the staged pipeline (module docs).
    pub fn compile<'a>(polys: impl IntoIterator<Item = &'a Polynomial>) -> SharedPlan {
        let queries = Self::parse(polys);
        let (distinct, subs_per_term) = Self::analyze(&queries);
        let (ordered, remap) = Self::optimize(distinct);
        Self::plan(queries, ordered, subs_per_term, remap)
    }

    /// Stage 1 — parse: normalize each polynomial into constant +
    /// canonical `(key, coef)` monomials.
    fn parse<'a>(polys: impl IntoIterator<Item = &'a Polynomial>) -> Vec<QueryIr> {
        polys
            .into_iter()
            .map(|p| {
                let mut const_base = 0.0;
                let mut terms = Vec::with_capacity(p.n_terms());
                for t in p.terms() {
                    if t.vars().is_empty() {
                        const_base += t.coef();
                    } else {
                        let key: TermKey = t.vars().iter().map(|&(i, e)| (i.0, e)).collect();
                        terms.push((key, t.coef()));
                    }
                }
                QueryIr { const_base, terms }
            })
            .collect()
    }

    /// Stage 2 — analyze: intern distinct keys (CSE across the book)
    /// and count subscriptions per distinct monomial.
    fn analyze(queries: &[QueryIr]) -> (Vec<TermKey>, Vec<u32>) {
        let mut ids: HashMap<&[(u32, u32)], u32> = HashMap::new();
        let mut distinct: Vec<TermKey> = Vec::new();
        let mut subs: Vec<u32> = Vec::new();
        for q in queries {
            for (key, _) in &q.terms {
                let id = *ids.entry(key.as_slice()).or_insert_with(|| {
                    distinct.push(key.clone());
                    subs.push(0);
                    (distinct.len() - 1) as u32
                });
                subs[id as usize] += 1;
            }
        }
        (distinct, subs)
    }

    /// Stage 3 — optimize: order the distinct set canonically so the
    /// plan is invariant under book permutation. Returns the ordered
    /// keys and the first-appearance → canonical id remap.
    fn optimize(distinct: Vec<TermKey>) -> (Vec<TermKey>, Vec<u32>) {
        let n = distinct.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| distinct[a as usize].cmp(&distinct[b as usize]));
        let mut remap = vec![0u32; n];
        for (new, &old) in order.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let mut ordered = vec![TermKey::new(); n];
        for (old, key) in distinct.into_iter().enumerate() {
            ordered[remap[old] as usize] = key;
        }
        (ordered, remap)
    }

    /// Stage 4 — plan: emit the SoA kernels and both CSR layouts.
    fn plan(
        queries: Vec<QueryIr>,
        ordered: Vec<TermKey>,
        subs_per_term: Vec<u32>,
        remap: Vec<u32>,
    ) -> SharedPlan {
        let n_terms = ordered.len();
        let mut factors = Vec::new();
        let mut kinds = Vec::with_capacity(n_terms);
        let mut degree = 0u32;
        let mut n_values = 0usize;
        for key in &ordered {
            kinds.push(classify(key, &mut factors));
            degree = degree.max(key.iter().map(|&(_, e)| e).sum());
            for &(i, _) in key {
                n_values = n_values.max(i as usize + 1);
            }
        }

        // Term → subscription CSR: counting sort over per-term
        // subscription counts; rows fill in query order, so each row
        // is ascending by query id.
        let mut sub_starts = vec![0u32; n_terms + 1];
        for (t, &c) in subs_per_term.iter().enumerate() {
            sub_starts[remap[t] as usize + 1] = c;
        }
        for t in 1..=n_terms {
            sub_starts[t] += sub_starts[t - 1];
        }
        let total_subs = sub_starts[n_terms] as usize;
        let mut cursor = sub_starts.clone();
        let mut sub_query = vec![0u32; total_subs];
        let mut sub_coef = vec![0f64; total_subs];
        let mut query_terms = Vec::with_capacity(queries.len());
        let mut const_base = Vec::with_capacity(queries.len());
        // Re-intern against the canonical order to map each query's
        // keys to final term ids.
        let key_index: HashMap<TermKey, u32> = ordered
            .iter()
            .enumerate()
            .map(|(t, k)| (k.clone(), t as u32))
            .collect();
        for (qi, q) in queries.iter().enumerate() {
            let mut refs = Vec::with_capacity(q.terms.len());
            for (key, coef) in &q.terms {
                let t = key_index[key] as usize;
                let k = cursor[t] as usize;
                sub_query[k] = qi as u32;
                sub_coef[k] = *coef;
                cursor[t] += 1;
                refs.push((t as u32, *coef));
            }
            query_terms.push(refs);
            const_base.push(q.const_base);
        }

        let sub_live: Vec<u32> = (0..n_terms)
            .map(|t| sub_starts[t + 1] - sub_starts[t])
            .collect();
        let (index_starts, index_terms) = build_item_index(&kinds, &factors, n_values);

        SharedPlan {
            kinds,
            factors,
            key_index,
            index_starts,
            index_terms,
            index_overlay: HashMap::new(),
            item_overlaid: vec![false; n_values],
            sub_starts,
            sub_query,
            sub_coef,
            sub_overlay: HashMap::new(),
            term_overlaid: vec![false; n_terms],
            sub_live,
            dead_subs: 0,
            overlay_subs: 0,
            live_query: vec![true; query_terms.len()],
            query_terms,
            const_base,
            free_slots: Vec::new(),
            n_values,
            degree,
        }
    }

    /// Distinct monomials in the plan (including any with zero live
    /// subscribers after retirement; term ids are stable).
    #[inline]
    pub fn n_terms(&self) -> usize {
        self.kinds.len()
    }

    /// Query slots (live + retired-but-reusable).
    #[inline]
    pub fn n_queries(&self) -> usize {
        self.query_terms.len()
    }

    /// Currently live queries.
    pub fn live_queries(&self) -> usize {
        self.live_query.iter().filter(|&&l| l).count()
    }

    /// Whether slot `qi` holds a live query.
    #[inline]
    pub fn is_live(&self, qi: usize) -> bool {
        self.live_query.get(qi).copied().unwrap_or(false)
    }

    /// Minimum length required of a `values` slice.
    #[inline]
    pub fn n_values(&self) -> usize {
        self.n_values
    }

    /// Maximum total degree across distinct monomials.
    #[inline]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Total live subscriptions on the scatter (the book's term count
    /// after CSE would be `n_terms`; this is before CSE).
    pub fn scatter_fanout(&self) -> usize {
        self.sub_live.iter().map(|&c| c as usize).sum()
    }

    /// Estimated heap footprint in bytes of the compiled plan (flat
    /// arrays by length, hash overlays at ~48 bytes/entry plus key
    /// payload; allocator slack excluded). Drives the evalbench
    /// memory-sublinearity gate.
    pub fn bytes(&self) -> usize {
        use std::mem::size_of;
        let map_entry = 48usize; // bucket + hash + lengths, estimated
        let key_bytes: usize = self
            .key_index
            .keys()
            .map(|k| k.len() * size_of::<(u32, u32)>() + map_entry)
            .sum();
        let overlays: usize = self
            .index_overlay
            .values()
            .map(|v| v.len() * size_of::<u32>() + map_entry)
            .sum::<usize>()
            + self
                .sub_overlay
                .values()
                .map(|v| v.len() * size_of::<(u32, f64)>() + map_entry)
                .sum::<usize>();
        let query_regs: usize = self
            .query_terms
            .iter()
            .map(|v| v.len() * size_of::<(u32, f64)>() + size_of::<Vec<(u32, f64)>>())
            .sum();
        size_of::<Self>()
            + self.kinds.len() * size_of::<SharedKind>()
            + self.factors.len() * size_of::<(u32, u32)>()
            + key_bytes
            + (self.index_starts.len() + self.index_terms.len()) * size_of::<u32>()
            + overlays
            + (self.sub_starts.len() + self.sub_query.len() + self.sub_live.len())
                * size_of::<u32>()
            + self.sub_coef.len() * size_of::<f64>()
            + self.term_overlaid.len()
            + self.item_overlaid.len()
            + query_regs
            + self.const_base.len() * size_of::<f64>()
            + self.live_query.len()
            + self.free_slots.len() * size_of::<u32>()
    }

    /// One distinct monomial's value at `values` (coefficient-free).
    #[inline]
    fn term_value(&self, t: usize, values: &[f64]) -> f64 {
        match self.kinds[t] {
            SharedKind::Linear { i } => values[i as usize],
            SharedKind::Square { i } => {
                let x = values[i as usize];
                x * x
            }
            SharedKind::Bilinear { i, j } => values[i as usize] * values[j as usize],
            SharedKind::General { start, end } => {
                let mut acc = 1.0;
                for &(i, e) in &self.factors[start as usize..end as usize] {
                    acc *= values[i as usize].powi(e as i32);
                }
                acc
            }
        }
    }

    /// Monomial value with `values[item]` overridden to `v` — the same
    /// exact-rounding trick as [`crate::EvalPlan`]'s delta path.
    #[inline]
    fn term_value_with(&self, t: usize, values: &[f64], item: u32, v: f64) -> f64 {
        let at = |i: u32| if i == item { v } else { values[i as usize] };
        match self.kinds[t] {
            SharedKind::Linear { i } => at(i),
            SharedKind::Square { i } => {
                let x = at(i);
                x * x
            }
            SharedKind::Bilinear { i, j } => at(i) * at(j),
            SharedKind::General { start, end } => {
                let mut acc = 1.0;
                for &(i, e) in &self.factors[start as usize..end as usize] {
                    acc *= at(i).powi(e as i32);
                }
                acc
            }
        }
    }

    /// Evaluates every distinct monomial once into `scratch`.
    pub fn eval_terms_into(&self, values: &[f64], scratch: &mut Vec<f64>) {
        assert!(values.len() >= self.n_values, "values slice too short");
        scratch.clear();
        scratch.extend((0..self.kinds.len()).map(|t| self.term_value(t, values)));
    }

    /// One query's value from precomputed monomial values:
    /// `const + Σ c_t · m_t` in the query's own term order. Retired
    /// slots evaluate to `0.0`.
    #[inline]
    pub fn query_value(&self, qi: usize, term_vals: &[f64]) -> f64 {
        let mut acc = self.const_base[qi];
        for &(t, c) in &self.query_terms[qi] {
            acc += c * term_vals[t as usize];
        }
        acc
    }

    /// Full evaluation of the whole book: every distinct monomial is
    /// computed exactly once (into `scratch`), then scattered into
    /// per-query values. `qv` is resized to the slot count.
    pub fn full_eval_into(&self, values: &[f64], scratch: &mut Vec<f64>, qv: &mut Vec<f64>) {
        self.eval_terms_into(values, scratch);
        qv.clear();
        qv.extend((0..self.query_terms.len()).map(|qi| self.query_value(qi, scratch)));
    }

    /// Scatters the move `old -> new` of `item` into `qv`: for each
    /// live distinct monomial containing the item, the coefficient-free
    /// delta `m(new) - m(old)` is computed **once** and applied as
    /// `qv[q] += c_q · d` per subscription. `values[item]` itself is
    /// ignored (the explicit `old`/`new` take its place). Returns the
    /// scatter fan-out (query values updated).
    ///
    /// # Panics
    /// Panics if `values.len() < self.n_values()` or `qv` is shorter
    /// than the slot count.
    pub fn delta_scatter(
        &self,
        values: &[f64],
        item: ItemId,
        old: f64,
        new: f64,
        qv: &mut [f64],
    ) -> u64 {
        if old == new {
            return 0;
        }
        assert!(values.len() >= self.n_values, "values slice too short");
        let i = item.0;
        let mut fanout = 0u64;
        if (i as usize) + 1 < self.index_starts.len() {
            let s = self.index_starts[i as usize] as usize;
            let e = self.index_starts[i as usize + 1] as usize;
            for k in s..e {
                fanout += self.scatter_term(self.index_terms[k] as usize, values, i, old, new, qv);
            }
        }
        if self.item_overlaid.get(i as usize).copied().unwrap_or(false) {
            if let Some(terms) = self.index_overlay.get(&i) {
                for &t in terms {
                    fanout += self.scatter_term(t as usize, values, i, old, new, qv);
                }
            }
        }
        fanout
    }

    /// Scatters one term's delta over its live subscriptions.
    #[inline]
    fn scatter_term(
        &self,
        t: usize,
        values: &[f64],
        item: u32,
        old: f64,
        new: f64,
        qv: &mut [f64],
    ) -> u64 {
        if self.sub_live[t] == 0 {
            return 0;
        }
        let d =
            self.term_value_with(t, values, item, new) - self.term_value_with(t, values, item, old);
        let mut fanout = 0u64;
        let s = self.sub_starts[t] as usize;
        let e = self.sub_starts[t + 1] as usize;
        for k in s..e {
            let q = self.sub_query[k];
            if q == DEAD {
                continue;
            }
            qv[q as usize] += self.sub_coef[k] * d;
            fanout += 1;
        }
        if self.term_overlaid[t] {
            if let Some(subs) = self.sub_overlay.get(&(t as u32)) {
                for &(q, c) in subs {
                    qv[q as usize] += c * d;
                    fanout += 1;
                }
            }
        }
        fanout
    }

    /// Live distinct monomials a change to `item` dispatches to — the
    /// shared-plan analogue of [`crate::EvalPlan::delta_cost`].
    pub fn delta_cost(&self, item: ItemId) -> usize {
        let i = item.0;
        let mut n = 0;
        if (i as usize) + 1 < self.index_starts.len() {
            let s = self.index_starts[i as usize] as usize;
            let e = self.index_starts[i as usize + 1] as usize;
            n += self.index_terms[s..e]
                .iter()
                .filter(|&&t| self.sub_live[t as usize] > 0)
                .count();
        }
        if self.item_overlaid.get(i as usize).copied().unwrap_or(false) {
            if let Some(terms) = self.index_overlay.get(&i) {
                n += terms
                    .iter()
                    .filter(|&&t| self.sub_live[t as usize] > 0)
                    .count();
            }
        }
        n
    }

    /// Admits one query into the book, patching the scatter instead of
    /// recompiling: new distinct monomials append at the SoA/CSR tail,
    /// subscriptions to existing monomials go to the overlay. Returns
    /// the slot id (a retired slot is reused when available). The
    /// caller owns re-seeding any maintained `qv[slot]`.
    pub fn admit(&mut self, poly: &Polynomial) -> u32 {
        let slot = match self.free_slots.pop() {
            Some(s) => s as usize,
            None => {
                self.query_terms.push(Vec::new());
                self.const_base.push(0.0);
                self.live_query.push(false);
                self.query_terms.len() - 1
            }
        };
        let mut const_base = 0.0;
        let mut refs = Vec::new();
        for term in poly.terms() {
            if term.vars().is_empty() {
                const_base += term.coef();
                continue;
            }
            let key: TermKey = term.vars().iter().map(|&(i, e)| (i.0, e)).collect();
            let coef = term.coef();
            let t = match self.key_index.get(&key) {
                Some(&t) => {
                    // Existing monomial: subscription goes to the overlay.
                    self.sub_overlay
                        .entry(t)
                        .or_default()
                        .push((slot as u32, coef));
                    self.term_overlaid[t as usize] = true;
                    self.overlay_subs += 1;
                    self.sub_live[t as usize] += 1;
                    t
                }
                None => {
                    // New monomial: append at the tail of every array;
                    // its first subscription extends the flat CSR.
                    let t = self.kinds.len() as u32;
                    self.kinds.push(classify(&key, &mut self.factors));
                    self.degree = self.degree.max(key.iter().map(|&(_, e)| e).sum());
                    for &(i, _) in &key {
                        if i as usize >= self.n_values {
                            self.n_values = i as usize + 1;
                        }
                        if i as usize >= self.item_overlaid.len() {
                            self.item_overlaid.resize(i as usize + 1, false);
                        }
                        self.index_overlay.entry(i).or_default().push(t);
                        self.item_overlaid[i as usize] = true;
                    }
                    self.sub_query.push(slot as u32);
                    self.sub_coef.push(coef);
                    self.sub_starts.push(self.sub_query.len() as u32);
                    self.sub_live.push(1);
                    self.term_overlaid.push(false);
                    self.key_index.insert(key, t);
                    t
                }
            };
            refs.push((t, coef));
        }
        self.query_terms[slot] = refs;
        self.const_base[slot] = const_base;
        self.live_query[slot] = true;
        self.maybe_compact();
        slot as u32
    }

    /// Retires the query at `slot`: its flat subscriptions are
    /// tombstoned in place, overlay subscriptions removed, and the slot
    /// queued for reuse. Returns `false` for a slot that is not live.
    pub fn retire(&mut self, slot: u32) -> bool {
        let s = slot as usize;
        if !self.is_live(s) {
            return false;
        }
        for (t, _) in std::mem::take(&mut self.query_terms[s]) {
            let row =
                self.sub_starts[t as usize] as usize..self.sub_starts[t as usize + 1] as usize;
            let mut found = false;
            for k in row {
                if self.sub_query[k] == slot {
                    self.sub_query[k] = DEAD;
                    self.dead_subs += 1;
                    found = true;
                    break;
                }
            }
            if !found {
                let subs = self
                    .sub_overlay
                    .get_mut(&t)
                    .expect("retired subscription neither flat nor overlaid");
                let before = subs.len();
                subs.retain(|&(q, _)| q != slot);
                debug_assert_eq!(before - subs.len(), 1);
                self.overlay_subs -= 1;
                if subs.is_empty() {
                    self.sub_overlay.remove(&t);
                    self.term_overlaid[t as usize] = false;
                }
            }
            self.sub_live[t as usize] -= 1;
        }
        self.const_base[s] = 0.0;
        self.live_query[s] = false;
        self.free_slots.push(slot);
        self.maybe_compact();
        true
    }

    /// Compacts when tombstone + overlay volume passes a quarter of the
    /// flat scatter (with a floor so small books don't thrash).
    fn maybe_compact(&mut self) {
        if self.dead_subs + self.overlay_subs > (self.sub_query.len() / 4).max(32) {
            self.compact();
        }
    }

    /// Rebuilds both CSR layouts to pure flat form: overlay
    /// subscriptions merge behind each term's surviving flat row,
    /// tombstones drop, and the item → term index re-sorts over the
    /// current universe. **Term ids and query slots are unchanged**, so
    /// maintained views stay valid across compaction.
    pub fn compact(&mut self) {
        let n_terms = self.kinds.len();
        let mut starts = Vec::with_capacity(n_terms + 1);
        let mut query = Vec::with_capacity(self.sub_query.len());
        let mut coef = Vec::with_capacity(self.sub_coef.len());
        starts.push(0u32);
        for t in 0..n_terms {
            let row = self.sub_starts[t] as usize..self.sub_starts[t + 1] as usize;
            for k in row {
                if self.sub_query[k] != DEAD {
                    query.push(self.sub_query[k]);
                    coef.push(self.sub_coef[k]);
                }
            }
            if let Some(subs) = self.sub_overlay.get(&(t as u32)) {
                for &(q, c) in subs {
                    query.push(q);
                    coef.push(c);
                }
            }
            starts.push(query.len() as u32);
        }
        self.sub_starts = starts;
        self.sub_query = query;
        self.sub_coef = coef;
        self.sub_overlay.clear();
        self.term_overlaid.clear();
        self.term_overlaid.resize(n_terms, false);
        self.dead_subs = 0;
        self.overlay_subs = 0;

        let (index_starts, index_terms) =
            build_item_index(&self.kinds, &self.factors, self.n_values);
        self.index_starts = index_starts;
        self.index_terms = index_terms;
        self.index_overlay.clear();
        self.item_overlaid.clear();
        self.item_overlaid.resize(self.n_values, false);
    }
}

/// Classifies a canonical key into a kernel shape, spilling general
/// factors into the shared flat array.
fn classify(key: &[(u32, u32)], factors: &mut Vec<(u32, u32)>) -> SharedKind {
    match *key {
        [(i, 1)] => SharedKind::Linear { i },
        [(i, 2)] => SharedKind::Square { i },
        [(i, 1), (j, 1)] => SharedKind::Bilinear { i, j },
        _ => {
            let start = factors.len() as u32;
            factors.extend_from_slice(key);
            SharedKind::General {
                start,
                end: factors.len() as u32,
            }
        }
    }
}

/// Builds the CSR item → term index by counting sort (the same scheme
/// as [`crate::EvalPlan`]'s inverted index).
fn build_item_index(
    kinds: &[SharedKind],
    factors: &[(u32, u32)],
    n_values: usize,
) -> (Vec<u32>, Vec<u32>) {
    let for_each_item = |kind: &SharedKind, f: &mut dyn FnMut(u32)| match *kind {
        SharedKind::Linear { i } | SharedKind::Square { i } => f(i),
        SharedKind::Bilinear { i, j } => {
            f(i);
            f(j);
        }
        SharedKind::General { start, end } => {
            for &(i, _) in &factors[start as usize..end as usize] {
                f(i);
            }
        }
    };
    let mut counts = vec![0u32; n_values + 1];
    for kind in kinds {
        for_each_item(kind, &mut |i| counts[i as usize + 1] += 1);
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let index_starts = counts.clone();
    let mut cursor = counts;
    let mut index_terms = vec![0u32; index_starts[n_values] as usize];
    for (ti, kind) in kinds.iter().enumerate() {
        for_each_item(kind, &mut |i| {
            index_terms[cursor[i as usize] as usize] = ti as u32;
            cursor[i as usize] += 1;
        });
    }
    (index_starts, index_terms)
}

/// Partitioner load estimates for a book under shared evaluation: a
/// query's marginal cost is the distinct monomials it is **first** to
/// introduce (in book order — one kernel evaluation each per delta)
/// plus a small scatter cost (`0.25`) per subscription (one fused
/// multiply-add on the scatter). The per-query [`crate::EvalPlan`]
/// proxy (`items per
/// query`) over-charges overlapping books, which is exactly what a
/// shared-aware partitioner must not do.
pub fn shared_query_loads<'a>(polys: impl IntoIterator<Item = &'a Polynomial>) -> Vec<f64> {
    let mut seen: HashMap<TermKey, ()> = HashMap::new();
    polys
        .into_iter()
        .map(|p| {
            let mut new_terms = 0usize;
            let mut subs = 0usize;
            for t in p.terms() {
                if t.vars().is_empty() {
                    continue;
                }
                subs += 1;
                let key: TermKey = t.vars().iter().map(|&(i, e)| (i.0, e)).collect();
                if seen.insert(key, ()).is_none() {
                    new_terms += 1;
                }
            }
            new_terms as f64 + SUB_LOAD * subs as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::EvalPlan;
    use crate::polynomial::PTerm;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    /// Three queries sharing the x0*x1 leg, plus shapes of every kind.
    fn book() -> Vec<Polynomial> {
        vec![
            // q0 = 2 x0 x1 + 3 x2 + 7
            Polynomial::from_terms([
                PTerm::new(2.0, [(x(0), 1), (x(1), 1)]).unwrap(),
                PTerm::new(3.0, [(x(2), 1)]).unwrap(),
                PTerm::constant(7.0).unwrap(),
            ]),
            // q1 = -1 x0 x1 + 4 x1^2
            Polynomial::from_terms([
                PTerm::new(-1.0, [(x(0), 1), (x(1), 1)]).unwrap(),
                PTerm::new(4.0, [(x(1), 2)]).unwrap(),
            ]),
            // q2 = 5 x0 x1 + 0.5 x1 x2^3
            Polynomial::from_terms([
                PTerm::new(5.0, [(x(0), 1), (x(1), 1)]).unwrap(),
                PTerm::new(0.5, [(x(1), 1), (x(2), 3)]).unwrap(),
            ]),
        ]
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + b.abs())
    }

    #[test]
    fn cse_dedupes_across_queries() {
        let book = book();
        let plan = SharedPlan::compile(book.iter());
        // Distinct: x0x1, x1^2, x2, x1*x2^3 — x0x1 shared three ways.
        assert_eq!(plan.n_terms(), 4);
        assert_eq!(plan.scatter_fanout(), 6);
        assert_eq!(plan.n_queries(), 3);
        assert_eq!(plan.live_queries(), 3);
        assert_eq!(plan.degree(), 4);
        assert_eq!(plan.n_values(), 3);
    }

    #[test]
    fn full_eval_tracks_per_query_plans() {
        let book = book();
        let plan = SharedPlan::compile(book.iter());
        let values = [3.0, 4.0, 5.0];
        let mut scratch = Vec::new();
        let mut qv = Vec::new();
        plan.full_eval_into(&values, &mut scratch, &mut qv);
        for (qi, p) in book.iter().enumerate() {
            assert!(close(qv[qi], p.eval(&values)), "q{qi}");
        }
    }

    #[test]
    fn compile_is_invariant_under_book_permutation() {
        let book = book();
        let plan = SharedPlan::compile(book.iter());
        let permuted: Vec<&Polynomial> = vec![&book[2], &book[0], &book[1]];
        let plan_p = SharedPlan::compile(permuted.iter().copied());
        let values = [3.0, 4.0, 5.0];
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        let (mut v1, mut v2) = (Vec::new(), Vec::new());
        plan.full_eval_into(&values, &mut s1, &mut v1);
        plan_p.full_eval_into(&values, &mut s2, &mut v2);
        // Same canonical distinct set, bit-identical monomial values...
        assert_eq!(s1, s2);
        // ...and bit-identical per-query values modulo the permutation.
        assert_eq!(v1[0].to_bits(), v2[1].to_bits());
        assert_eq!(v1[1].to_bits(), v2[2].to_bits());
        assert_eq!(v1[2].to_bits(), v2[0].to_bits());
    }

    #[test]
    fn delta_scatter_tracks_per_query_delta_eval() {
        let book = book();
        let plan = SharedPlan::compile(book.iter());
        let plans: Vec<EvalPlan> = book.iter().map(EvalPlan::compile).collect();
        let mut values = vec![3.0, 4.0, 5.0];
        let mut scratch = Vec::new();
        let mut qv = Vec::new();
        plan.full_eval_into(&values, &mut scratch, &mut qv);
        for (item, new) in [(0usize, 3.5), (1, -2.0), (2, 0.25), (1, 10.0), (0, 0.0)] {
            let old = values[item];
            plan.delta_scatter(&values, x(item as u32), old, new, &mut qv);
            values[item] = new;
            for (qi, p) in plans.iter().enumerate() {
                let full = p.eval(&values);
                assert!(close(qv[qi], full), "q{qi}: {} vs {full}", qv[qi]);
            }
        }
    }

    #[test]
    fn noop_and_foreign_moves_cost_nothing() {
        let plan = SharedPlan::compile(book().iter());
        let values = [3.0, 4.0, 5.0];
        let mut qv = vec![0.0; 3];
        assert_eq!(plan.delta_scatter(&values, x(0), 3.0, 3.0, &mut qv), 0);
        assert_eq!(plan.delta_scatter(&values, x(9), 1.0, 2.0, &mut qv), 0);
        assert_eq!(qv, vec![0.0; 3]);
        assert_eq!(plan.delta_cost(x(9)), 0);
        assert_eq!(plan.delta_cost(x(0)), 1);
        assert_eq!(plan.delta_cost(x(1)), 3);
    }

    #[test]
    fn admit_shares_existing_monomials() {
        let book = book();
        let mut plan = SharedPlan::compile(book.iter());
        // New query reusing x0x1 and introducing x0^2.
        let q3 = Polynomial::from_terms([
            PTerm::new(3.0, [(x(0), 1), (x(1), 1)]).unwrap(),
            PTerm::new(1.0, [(x(0), 2)]).unwrap(),
        ]);
        let slot = plan.admit(&q3);
        assert_eq!(slot, 3);
        assert_eq!(plan.n_terms(), 5, "only x0^2 is new");
        assert_eq!(plan.scatter_fanout(), 8);

        let mut values = vec![3.0, 4.0, 5.0];
        let mut scratch = Vec::new();
        let mut qv = Vec::new();
        plan.full_eval_into(&values, &mut scratch, &mut qv);
        assert!(close(qv[3], q3.eval(&values)));
        // Deltas dispatch through the overlay to the admitted query.
        let old = values[0];
        plan.delta_scatter(&values, x(0), old, 6.0, &mut qv);
        values[0] = 6.0;
        assert!(close(qv[3], q3.eval(&values)));
    }

    #[test]
    fn retire_tombstones_and_reuses_slots() {
        let book = book();
        let mut plan = SharedPlan::compile(book.iter());
        assert!(plan.retire(1));
        assert!(!plan.retire(1), "double retire is a no-op");
        assert_eq!(plan.live_queries(), 2);
        assert_eq!(plan.scatter_fanout(), 4);

        let mut values = vec![3.0, 4.0, 5.0];
        let mut scratch = Vec::new();
        let mut qv = Vec::new();
        plan.full_eval_into(&values, &mut scratch, &mut qv);
        assert_eq!(qv[1], 0.0, "retired slot evaluates to zero");
        let old = values[1];
        plan.delta_scatter(&values, x(1), old, 7.0, &mut qv);
        values[1] = 7.0;
        assert_eq!(qv[1], 0.0, "tombstoned subscriptions receive no deltas");
        assert!(close(qv[0], book[0].eval(&values)));
        assert!(close(qv[2], book[2].eval(&values)));

        // The freed slot is reused by the next admission.
        let q = Polynomial::term(PTerm::new(1.0, [(x(2), 1)]).unwrap());
        assert_eq!(plan.admit(&q), 1);
        assert_eq!(plan.n_queries(), 3);
    }

    #[test]
    fn compaction_preserves_values_and_term_ids() {
        let book = book();
        let mut plan = SharedPlan::compile(book.iter());
        let q3 = Polynomial::from_terms([
            PTerm::new(3.0, [(x(0), 1), (x(1), 1)]).unwrap(),
            PTerm::new(1.0, [(x(3), 1)]).unwrap(),
        ]);
        plan.admit(&q3);
        plan.retire(0);
        let values = [3.0, 4.0, 5.0, 6.0];
        let (mut s1, mut v1) = (Vec::new(), Vec::new());
        plan.full_eval_into(&values, &mut s1, &mut v1);
        let n_terms = plan.n_terms();

        plan.compact();
        assert_eq!(plan.n_terms(), n_terms, "term ids stable");
        let (mut s2, mut v2) = (Vec::new(), Vec::new());
        plan.full_eval_into(&values, &mut s2, &mut v2);
        assert_eq!(s1, s2);
        for (a, b) in v1.iter().zip(&v2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Delta dispatch now runs through the rebuilt flat CSR.
        let mut values = values.to_vec();
        let old = values[3];
        plan.delta_scatter(&values, x(3), old, 9.0, &mut v2);
        values[3] = 9.0;
        assert!(close(v2[3], q3.eval(&values)));
    }

    #[test]
    fn churn_reaches_the_same_values_as_a_fresh_compile() {
        let book = book();
        let mut plan = SharedPlan::compile(book.iter());
        let q3 = Polynomial::from_terms([
            PTerm::new(3.0, [(x(0), 1), (x(1), 1)]).unwrap(),
            PTerm::new(-2.0, [(x(2), 2)]).unwrap(),
        ]);
        plan.admit(&q3);
        plan.retire(1);

        // Fresh compile of the surviving book (q0, q2, q3).
        let fresh = SharedPlan::compile([&book[0], &book[2], &q3]);
        let values = [1.5, -2.5, 4.0];
        let (mut s, mut fresh_qv) = (Vec::new(), Vec::new());
        fresh.full_eval_into(&values, &mut s, &mut fresh_qv);
        let (mut s2, mut churn_qv) = (Vec::new(), Vec::new());
        plan.full_eval_into(&values, &mut s2, &mut churn_qv);
        // Churned slots: q0->0, q2->2, q3->3; fresh: 0,1,2.
        assert_eq!(churn_qv[0].to_bits(), fresh_qv[0].to_bits());
        assert_eq!(churn_qv[2].to_bits(), fresh_qv[1].to_bits());
        assert_eq!(churn_qv[3].to_bits(), fresh_qv[2].to_bits());
    }

    #[test]
    fn bytes_grow_sublinearly_on_overlapping_books() {
        // 64 queries over the same 4 legs of a 256-item universe:
        // shared bytes must be far below 64 per-query plans (each of
        // which repeats both the terms and an `index_starts` array
        // sized by its max item id).
        let legs: Vec<Polynomial> = (0..64)
            .map(|k| {
                Polynomial::from_terms((0..4).map(|l| {
                    PTerm::new(1.0 + k as f64, [(x(200 + l), 1), (x(204 + l), 1)]).unwrap()
                }))
            })
            .collect();
        let shared = SharedPlan::compile(legs.iter());
        assert_eq!(shared.n_terms(), 4);
        let per_query: usize = legs.iter().map(|p| EvalPlan::compile(p).bytes()).sum();
        assert!(
            shared.bytes() * 2 < per_query,
            "shared {} vs per-query {}",
            shared.bytes(),
            per_query
        );
    }

    #[test]
    fn shared_loads_charge_first_introduction() {
        let book = book();
        let loads = shared_query_loads(book.iter());
        // q0 introduces x0x1 and x2 (2 terms, 2 subs); q1 introduces
        // x1^2 (1 of 2); q2 introduces x1x2^3 (1 of 2).
        assert_eq!(loads, vec![2.5, 1.5, 1.5]);
    }

    #[test]
    fn empty_book_compiles() {
        let plan = SharedPlan::compile(std::iter::empty());
        assert_eq!(plan.n_terms(), 0);
        assert_eq!(plan.n_queries(), 0);
        assert!(plan.bytes() > 0);
        let mut qv: Vec<f64> = Vec::new();
        assert_eq!(plan.delta_scatter(&[], x(0), 1.0, 2.0, &mut qv), 0);
    }
}
