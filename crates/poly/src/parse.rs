//! A small expression parser for polynomial bodies.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! poly   := [sign] term (sign term)*
//! term   := factor ('*' factor)*
//! factor := number | ident ['^' integer]
//! sign   := '+' | '-'
//! ```
//!
//! Identifiers are interned through an [`ItemCatalog`], so
//! `"3.5*ibm*usd - spill^2"` builds the polynomial and registers the items
//! in one pass. Intended for examples, tests and interactive tools; the
//! programmatic constructors in [`crate::query`] are the primary API.

use crate::error::PolyError;
use crate::item::ItemCatalog;
use crate::polynomial::{PTerm, Polynomial};

/// Parses `input` into a [`Polynomial`], interning item names in `catalog`.
pub fn parse_polynomial(input: &str, catalog: &mut ItemCatalog) -> Result<Polynomial, PolyError> {
    Parser {
        bytes: input.as_bytes(),
        pos: 0,
        catalog,
    }
    .parse()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    catalog: &'a mut ItemCatalog,
}

impl Parser<'_> {
    fn parse(mut self) -> Result<Polynomial, PolyError> {
        let mut terms = Vec::new();
        self.skip_ws();
        if self.at_end() {
            return Err(self.error("empty input"));
        }
        let mut sign = 1.0;
        if self.eat(b'-') {
            sign = -1.0;
        } else {
            self.eat(b'+');
        }
        loop {
            terms.push(self.term(sign)?);
            self.skip_ws();
            if self.at_end() {
                break;
            }
            sign = if self.eat(b'+') {
                1.0
            } else if self.eat(b'-') {
                -1.0
            } else {
                return Err(self.error("expected '+' or '-' between terms"));
            };
        }
        Ok(Polynomial::from_terms(terms))
    }

    fn term(&mut self, sign: f64) -> Result<PTerm, PolyError> {
        let mut coef = sign;
        let mut vars = Vec::new();
        let mut saw_factor = false;
        loop {
            self.skip_ws();
            if let Some(n) = self.number()? {
                coef *= n;
                saw_factor = true;
            } else if let Some(name) = self.ident() {
                let id = self.catalog.intern(&name);
                let exp = if self.eat(b'^') { self.uint()? } else { 1 };
                vars.push((id, exp));
                saw_factor = true;
            } else if !saw_factor {
                return Err(self.error("expected number or item name"));
            } else {
                break;
            }
            self.skip_ws();
            if !self.eat(b'*') {
                // Allow juxtaposition only before identifiers ("2 x y").
                if !self.peek_ident_start() {
                    break;
                }
            }
        }
        PTerm::new(coef, vars)
    }

    fn number(&mut self) -> Result<Option<f64>, PolyError> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || *b == b'.')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Ok(None);
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        s.parse::<f64>()
            .map(Some)
            .map_err(|_| self.error_at(start, "malformed number"))
    }

    fn uint(&mut self) -> Result<u32, PolyError> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected exponent"));
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        s.parse::<u32>()
            .map_err(|_| self.error_at(start, "exponent out of range"))
    }

    fn ident(&mut self) -> Option<String> {
        if !self.peek_ident_start() {
            return None;
        }
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        Some(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn peek_ident_start(&self) -> bool {
        self.bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphabetic() || *b == b'_')
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn error(&self, message: &str) -> PolyError {
        self.error_at(self.pos, message)
    }

    fn error_at(&self, offset: usize, message: &str) -> PolyError {
        PolyError::Parse {
            message: message.to_owned(),
            offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_portfolio_style_expression() {
        let mut cat = ItemCatalog::new();
        let p = parse_polynomial("3*ibm*usd + 2*tcs*inr", &mut cat).unwrap();
        assert_eq!(p.n_terms(), 2);
        assert_eq!(cat.len(), 4);
        // ibm=0 usd=1 tcs=2 inr=3.
        assert!((p.eval(&[10.0, 2.0, 5.0, 0.5]) - (60.0 + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn parses_signs_and_powers() {
        let mut cat = ItemCatalog::new();
        let p = parse_polynomial("-x^2 + 2.5*y - 1.5", &mut cat).unwrap();
        // x=0, y=1.
        assert!((p.eval(&[2.0, 4.0]) - (-4.0 + 10.0 - 1.5)).abs() < 1e-12);
    }

    #[test]
    fn juxtaposition_multiplies() {
        let mut cat = ItemCatalog::new();
        let p = parse_polynomial("2 x y", &mut cat).unwrap();
        assert!((p.eval(&[3.0, 5.0]) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn reuses_catalog_ids_across_calls() {
        let mut cat = ItemCatalog::new();
        parse_polynomial("a*b", &mut cat).unwrap();
        let p2 = parse_polynomial("b^2", &mut cat).unwrap();
        assert_eq!(cat.len(), 2);
        assert!((p2.eval(&[0.0, 3.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn merges_duplicate_terms() {
        let mut cat = ItemCatalog::new();
        let p = parse_polynomial("x*y + y*x", &mut cat).unwrap();
        assert_eq!(p.n_terms(), 1);
        assert!((p.eval(&[2.0, 3.0]) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_input() {
        let mut cat = ItemCatalog::new();
        assert!(parse_polynomial("", &mut cat).is_err());
        assert!(parse_polynomial("+", &mut cat).is_err());
        assert!(parse_polynomial("x +", &mut cat).is_err());
        assert!(parse_polynomial("x ^", &mut cat).is_err());
        assert!(parse_polynomial("x y z &", &mut cat).is_err());
        assert!(parse_polynomial("3..5 * x", &mut cat).is_err());
    }

    #[test]
    fn cancellation_to_zero_is_allowed() {
        let mut cat = ItemCatalog::new();
        let p = parse_polynomial("x - x", &mut cat).unwrap();
        assert!(p.is_zero());
    }
}
