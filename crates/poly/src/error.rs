//! Error types for polynomial construction, parsing and constraint building.

/// Errors from polynomial algebra and constraint construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PolyError {
    /// Term coefficients must be finite and non-zero.
    InvalidCoefficient(f64),
    /// Constraint construction requires a positive-coefficient polynomial.
    NotPositiveCoefficient,
    /// Constraint construction requires non-negative current values.
    NegativeValue {
        /// Index of the offending item.
        item: u32,
        /// The offending value.
        value: f64,
    },
    /// A value vector was shorter than the largest referenced item id.
    MissingValue {
        /// Index of the item that had no value.
        item: u32,
    },
    /// The polynomial has no terms where one was required.
    EmptyPolynomial,
    /// Query accuracy bounds must be strictly positive and finite.
    InvalidBound(f64),
    /// Parse error with a human-readable message and byte offset.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset into the input.
        offset: usize,
    },
}

impl std::fmt::Display for PolyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolyError::InvalidCoefficient(c) => {
                write!(f, "coefficient must be finite and non-zero, got {c}")
            }
            PolyError::NotPositiveCoefficient => {
                write!(f, "operation requires a positive-coefficient polynomial")
            }
            PolyError::NegativeValue { item, value } => {
                write!(f, "item x{item} has negative current value {value}")
            }
            PolyError::MissingValue { item } => {
                write!(f, "no current value supplied for item x{item}")
            }
            PolyError::EmptyPolynomial => write!(f, "polynomial has no terms"),
            PolyError::InvalidBound(b) => {
                write!(f, "accuracy bound must be > 0 and finite, got {b}")
            }
            PolyError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for PolyError {}
