//! Compiled evaluation plans for the simulator/coordinator hot loop.
//!
//! [`crate::Polynomial::eval`] walks a `Vec<PTerm>` of `Vec<(ItemId, u32)>`
//! factor lists and calls `powi` per factor — fine for occasional
//! evaluation, but the coordinator re-evaluates every query on every
//! refresh and every fidelity sample. An [`EvalPlan`] compiles a
//! polynomial once into flat structure-of-arrays storage with a per-term
//! shape tag, so the common shapes of the paper's workloads (constants,
//! linear terms, squares, bilinear `w·x·y` portfolio legs) evaluate with
//! no indirection, no `powi`, and no per-term allocation.
//!
//! Two guarantees matter to callers:
//!
//! * **Bit-identical full evaluation.** [`EvalPlan::eval`] performs the
//!   same floating-point operations in the same order as the naive
//!   [`crate::Polynomial::eval`] (term order preserved, factor order
//!   preserved, `x.powi(1) ≡ x` and `x.powi(2) ≡ x*x` under IEEE-754),
//!   so switching to the compiled path can never change a comparison.
//! * **Localized deltas.** The plan carries an inverted item → term
//!   index, and [`EvalPlan::delta_eval`] returns the exact change of the
//!   polynomial when one item moves, touching only the terms that
//!   contain the item — `O(affected terms)` instead of `O(all terms)`,
//!   the DBToaster-style delta processing the incremental simulator
//!   views are built on.

use crate::item::ItemId;
use crate::polynomial::Polynomial;

/// Shape of one compiled term, dispatching to an unrolled kernel.
///
/// Degree ≤ 2 covers every query class the paper evaluates (linear
/// aggregates, portfolio/arbitrage products, squares); higher-degree
/// terms fall back to a flat factor scan over the plan's SoA arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TermKind {
    /// `coef`
    Const,
    /// `coef * x_i`
    Linear { i: u32 },
    /// `coef * x_i^2`
    Square { i: u32 },
    /// `coef * x_i * x_j` with `i < j` (a portfolio/arbitrage leg).
    Bilinear { i: u32, j: u32 },
    /// General product over `factors[start..end]`.
    General { start: u32, end: u32 },
}

/// A polynomial compiled for repeated evaluation and delta maintenance.
///
/// Build one with [`EvalPlan::compile`]; the plan is immutable and holds
/// no references to the source polynomial.
///
/// ```
/// use pq_poly::{parse_polynomial, EvalPlan, ItemCatalog, ItemId};
/// let mut catalog = ItemCatalog::new();
/// let p = parse_polynomial("2*x0*x1 - x2^2 + 7", &mut catalog).unwrap();
/// let plan = EvalPlan::compile(&p);
/// let mut values = vec![3.0, 4.0, 5.0];
/// assert_eq!(plan.eval(&values), p.eval(&values));
///
/// // x1: 4 -> 6 changes only the 2*x0*x1 term.
/// let delta = plan.delta_eval(&values, ItemId(1), 4.0, 6.0);
/// values[1] = 6.0;
/// assert_eq!(plan.eval(&values), p.eval(&values));
/// assert!((delta - 12.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPlan {
    /// Per-term coefficient, in the source polynomial's term order.
    coefs: Vec<f64>,
    /// Per-term shape tag.
    kinds: Vec<TermKind>,
    /// Flat `(item, exponent)` factors for `General` terms only.
    factors: Vec<(u32, u32)>,
    /// CSR inverted index: `index_terms[index_starts[i]..index_starts[i+1]]`
    /// are the term ids containing item `i`.
    index_starts: Vec<u32>,
    index_terms: Vec<u32>,
    /// Minimum length a `values` slice must have (`1 + max item id`, or 0).
    n_values: usize,
    /// Maximum total degree across terms.
    degree: u32,
}

impl EvalPlan {
    /// Compiles `poly` into a plan. Term order is preserved, so full
    /// evaluation is bit-identical to [`Polynomial::eval`].
    pub fn compile(poly: &Polynomial) -> EvalPlan {
        let n_terms = poly.n_terms();
        let mut coefs = Vec::with_capacity(n_terms);
        let mut kinds = Vec::with_capacity(n_terms);
        let mut factors: Vec<(u32, u32)> = Vec::new();
        let mut degree = 0u32;
        let n_values = poly.max_item().map_or(0, |i| i.index() + 1);

        for t in poly.terms() {
            coefs.push(t.coef());
            degree = degree.max(t.degree());
            let vars = t.vars();
            let kind = match *vars {
                [] => TermKind::Const,
                [(i, 1)] => TermKind::Linear { i: i.0 },
                [(i, 2)] => TermKind::Square { i: i.0 },
                [(i, 1), (j, 1)] => TermKind::Bilinear { i: i.0, j: j.0 },
                _ => {
                    let start = factors.len() as u32;
                    factors.extend(vars.iter().map(|&(i, e)| (i.0, e)));
                    TermKind::General {
                        start,
                        end: factors.len() as u32,
                    }
                }
            };
            kinds.push(kind);
        }

        // Inverted index by counting sort: item -> terms containing it.
        let mut counts = vec![0u32; n_values + 1];
        let for_each_item = |kind: &TermKind, f: &mut dyn FnMut(u32)| match *kind {
            TermKind::Const => {}
            TermKind::Linear { i } | TermKind::Square { i } => f(i),
            TermKind::Bilinear { i, j } => {
                f(i);
                f(j);
            }
            TermKind::General { start, end } => {
                for &(i, _) in &factors[start as usize..end as usize] {
                    f(i);
                }
            }
        };
        for kind in &kinds {
            for_each_item(kind, &mut |i| counts[i as usize + 1] += 1);
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let index_starts = counts.clone();
        let mut cursor = counts;
        let mut index_terms = vec![0u32; index_starts[n_values] as usize];
        for (ti, kind) in kinds.iter().enumerate() {
            for_each_item(kind, &mut |i| {
                index_terms[cursor[i as usize] as usize] = ti as u32;
                cursor[i as usize] += 1;
            });
        }

        EvalPlan {
            coefs,
            kinds,
            factors,
            index_starts,
            index_terms,
            n_values,
            degree,
        }
    }

    /// Number of compiled terms.
    #[inline]
    pub fn n_terms(&self) -> usize {
        self.coefs.len()
    }

    /// Minimum length [`EvalPlan::eval`] requires of its `values` slice.
    #[inline]
    pub fn n_values(&self) -> usize {
        self.n_values
    }

    /// Maximum total degree across terms.
    #[inline]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Term ids containing `item` (ascending; empty for foreign items).
    #[inline]
    pub fn terms_for(&self, item: ItemId) -> &[u32] {
        let i = item.index();
        if i >= self.n_values {
            return &[];
        }
        &self.index_terms[self.index_starts[i] as usize..self.index_starts[i + 1] as usize]
    }

    /// One term's value at `values`, with `values[item]` overridden to
    /// `v` (the override is what makes [`EvalPlan::delta_eval`] exact:
    /// both the old and new term values round exactly as a full
    /// evaluation at the respective inputs would).
    #[inline]
    fn term_with(&self, ti: usize, values: &[f64], item: u32, v: f64) -> f64 {
        let at = |i: u32| if i == item { v } else { values[i as usize] };
        let coef = self.coefs[ti];
        match self.kinds[ti] {
            TermKind::Const => coef,
            TermKind::Linear { i } => coef * at(i),
            TermKind::Square { i } => {
                let x = at(i);
                coef * (x * x)
            }
            TermKind::Bilinear { i, j } => (coef * at(i)) * at(j),
            TermKind::General { start, end } => {
                let mut acc = coef;
                for &(i, e) in &self.factors[start as usize..end as usize] {
                    acc *= at(i).powi(e as i32);
                }
                acc
            }
        }
    }

    /// Evaluates at `values[item.index()]`, bit-identical to
    /// [`Polynomial::eval`] on the source polynomial.
    ///
    /// # Panics
    /// Panics if `values.len() < self.n_values()`.
    #[inline]
    pub fn eval(&self, values: &[f64]) -> f64 {
        assert!(values.len() >= self.n_values, "values slice too short");
        let mut acc = 0.0;
        for ti in 0..self.kinds.len() {
            let coef = self.coefs[ti];
            acc += match self.kinds[ti] {
                TermKind::Const => coef,
                TermKind::Linear { i } => coef * values[i as usize],
                TermKind::Square { i } => {
                    let x = values[i as usize];
                    coef * (x * x)
                }
                // Matches the naive left-to-right factor product:
                // (coef * x_i) * x_j.
                TermKind::Bilinear { i, j } => (coef * values[i as usize]) * values[j as usize],
                TermKind::General { start, end } => {
                    let mut t = coef;
                    for &(i, e) in &self.factors[start as usize..end as usize] {
                        t *= values[i as usize].powi(e as i32);
                    }
                    t
                }
            };
        }
        acc
    }

    /// The exact change `P(..., item=new, ...) - P(..., item=old, ...)`,
    /// touching only the terms that contain `item`. `values[item.index()]`
    /// itself is ignored (the `old`/`new` arguments take its place), so
    /// callers may apply the delta before or after writing the new value.
    ///
    /// Each touched term's old and new contributions are rounded exactly
    /// as a full evaluation would round them; the only extra rounding is
    /// the subtraction and the sum across touched terms. Returns `0.0`
    /// for items the polynomial does not reference.
    ///
    /// # Panics
    /// Panics if `values.len() < self.n_values()`.
    #[inline]
    pub fn delta_eval(&self, values: &[f64], item: ItemId, old: f64, new: f64) -> f64 {
        assert!(values.len() >= self.n_values, "values slice too short");
        let i = item.0;
        let mut delta = 0.0;
        for &ti in self.terms_for(item) {
            let ti = ti as usize;
            delta += self.term_with(ti, values, i, new) - self.term_with(ti, values, i, old);
        }
        delta
    }

    /// Number of `(term, factor)` touches a change to `item` costs — the
    /// work metric behind the `O(affected terms)` claim.
    pub fn delta_cost(&self, item: ItemId) -> usize {
        self.terms_for(item).len()
    }

    /// Heap footprint in bytes of the compiled plan (flat arrays by
    /// length; allocator slack excluded). The per-query counterpart of
    /// [`crate::SharedPlan::bytes`] for the evalbench memory gate.
    pub fn bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.coefs.len() * size_of::<f64>()
            + self.kinds.len() * size_of::<TermKind>()
            + self.factors.len() * size_of::<(u32, u32)>()
            + (self.index_starts.len() + self.index_terms.len()) * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polynomial::PTerm;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    /// A mixed-shape polynomial: constant, linear, square, bilinear and a
    /// degree-4 general term.
    fn mixed() -> Polynomial {
        Polynomial::from_terms([
            PTerm::constant(7.5).unwrap(),
            PTerm::new(-2.0, [(x(0), 1)]).unwrap(),
            PTerm::new(3.0, [(x(1), 2)]).unwrap(),
            PTerm::new(1.5, [(x(0), 1), (x(2), 1)]).unwrap(),
            PTerm::new(-0.25, [(x(1), 1), (x(2), 3)]).unwrap(),
        ])
    }

    #[test]
    fn compiled_eval_is_bit_identical_to_naive() {
        let p = mixed();
        let plan = EvalPlan::compile(&p);
        assert_eq!(plan.n_terms(), p.n_terms());
        assert_eq!(plan.degree(), p.degree());
        assert_eq!(plan.n_values(), 3);
        for values in [
            [3.0, 4.0, 5.0],
            [0.1, -2.7, 1e6],
            [1.0 / 3.0, 2.0 / 7.0, 9.99e-3],
        ] {
            assert_eq!(plan.eval(&values), p.eval(&values), "at {values:?}");
        }
    }

    #[test]
    fn inverted_index_covers_exactly_the_containing_terms() {
        let plan = EvalPlan::compile(&mixed());
        assert_eq!(plan.terms_for(x(0)), &[1, 3]);
        assert_eq!(plan.terms_for(x(1)), &[2, 4]);
        assert_eq!(plan.terms_for(x(2)), &[3, 4]);
        assert_eq!(plan.terms_for(x(9)), &[] as &[u32]);
        assert_eq!(plan.delta_cost(x(2)), 2);
    }

    #[test]
    fn delta_eval_matches_full_reevaluation() {
        let p = mixed();
        let plan = EvalPlan::compile(&p);
        let mut values = vec![3.0, 4.0, 5.0];
        let mut running = plan.eval(&values);
        for (item, new) in [(0, 3.5), (2, 4.0), (1, -1.0), (2, 5.5), (0, 0.0)] {
            let old = values[item];
            running += plan.delta_eval(&values, x(item as u32), old, new);
            values[item] = new;
            let full = plan.eval(&values);
            assert!(
                (running - full).abs() <= 1e-9 * (1.0 + full.abs()),
                "running {running} vs full {full}"
            );
        }
    }

    #[test]
    fn delta_for_foreign_item_is_zero() {
        let plan = EvalPlan::compile(&mixed());
        let values = [3.0, 4.0, 5.0, 6.0];
        assert_eq!(plan.delta_eval(&values, x(3), 6.0, 100.0), 0.0);
    }

    #[test]
    fn zero_polynomial_compiles() {
        let plan = EvalPlan::compile(&Polynomial::zero());
        assert_eq!(plan.n_terms(), 0);
        assert_eq!(plan.n_values(), 0);
        assert_eq!(plan.eval(&[]), 0.0);
        assert_eq!(plan.delta_eval(&[], x(0), 1.0, 2.0), 0.0);
    }

    #[test]
    fn general_fallback_uses_powi_like_naive() {
        // x^3 * y: powi(3) (exponentiation by squaring) must match the
        // naive path bit-for-bit because both call powi.
        let p = Polynomial::term(PTerm::new(2.0, [(x(0), 3), (x(1), 1)]).unwrap());
        let plan = EvalPlan::compile(&p);
        let values = [1.000000123, 7.3];
        assert_eq!(plan.eval(&values), p.eval(&values));
    }
}
