//! Multivariate polynomials over data items.
//!
//! These are the query bodies of the paper: `P(x_1..x_n) = sum_i w_i *
//! x^{p_i} ...` with real weights of either sign and **non-negative integer
//! exponents**. Integer exponents are what the paper's evaluated queries use
//! (degree-2 products) and what the exact worst-case-deviation expansion in
//! [`crate::constraint`] requires; geometric programming itself would allow
//! fractional exponents, for which the crate offers a conservative
//! first-order fallback.

use crate::error::PolyError;
use crate::item::ItemId;

/// One polynomial term `coef * prod_i x_i^{e_i}`.
///
/// Variables are sorted by item id, merged, with no zero exponents.
#[derive(Debug, Clone, PartialEq)]
pub struct PTerm {
    coef: f64,
    vars: Vec<(ItemId, u32)>,
}

impl PTerm {
    /// Creates a term; exponent pairs may be unsorted/duplicated.
    ///
    /// # Errors
    /// [`PolyError::InvalidCoefficient`] unless `coef` is finite & non-zero.
    pub fn new(
        coef: f64,
        vars: impl IntoIterator<Item = (ItemId, u32)>,
    ) -> Result<Self, PolyError> {
        if coef == 0.0 || !coef.is_finite() {
            return Err(PolyError::InvalidCoefficient(coef));
        }
        let mut pairs: Vec<(ItemId, u32)> = vars.into_iter().collect();
        pairs.sort_by_key(|&(v, _)| v);
        let mut merged: Vec<(ItemId, u32)> = Vec::with_capacity(pairs.len());
        for (v, e) in pairs {
            match merged.last_mut() {
                Some((lv, le)) if *lv == v => *le += e,
                _ => merged.push((v, e)),
            }
        }
        merged.retain(|&(_, e)| e != 0);
        Ok(PTerm { coef, vars: merged })
    }

    /// A constant term.
    pub fn constant(coef: f64) -> Result<Self, PolyError> {
        PTerm::new(coef, [])
    }

    /// The coefficient (weight) of the term.
    #[inline]
    pub fn coef(&self) -> f64 {
        self.coef
    }

    /// The `(item, exponent)` pairs, sorted by item id.
    #[inline]
    pub fn vars(&self) -> &[(ItemId, u32)] {
        &self.vars
    }

    /// Total degree (sum of exponents).
    pub fn degree(&self) -> u32 {
        self.vars.iter().map(|&(_, e)| e).sum()
    }

    /// Evaluates the term at `values[item.index()]`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        let mut v = self.coef;
        for &(i, e) in &self.vars {
            v *= values[i.index()].powi(e as i32);
        }
        v
    }

    fn with_coef(&self, coef: f64) -> PTerm {
        PTerm {
            coef,
            vars: self.vars.clone(),
        }
    }
}

/// A polynomial: a sum of [`PTerm`]s with distinct variable signatures.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polynomial {
    terms: Vec<PTerm>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { terms: Vec::new() }
    }

    /// Builds a polynomial from terms, merging equal variable signatures and
    /// dropping terms that cancel to zero.
    pub fn from_terms(terms: impl IntoIterator<Item = PTerm>) -> Self {
        let mut p = Polynomial::zero();
        for t in terms {
            p.accumulate(t);
        }
        p
    }

    /// A single-term polynomial.
    pub fn term(t: PTerm) -> Self {
        Polynomial { terms: vec![t] }
    }

    fn accumulate(&mut self, t: PTerm) {
        if let Some(existing) = self.terms.iter_mut().find(|e| e.vars == t.vars) {
            existing.coef += t.coef;
            if existing.coef == 0.0 {
                self.terms.retain(|e| e.coef != 0.0);
            }
        } else {
            self.terms.push(t);
        }
    }

    /// The terms of the polynomial.
    #[inline]
    pub fn terms(&self) -> &[PTerm] {
        &self.terms
    }

    /// Number of terms.
    #[inline]
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// True for the zero polynomial.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The polynomial degree: max over terms of the total degree.
    pub fn degree(&self) -> u32 {
        self.terms.iter().map(PTerm::degree).max().unwrap_or(0)
    }

    /// True if every coefficient is positive (a PPQ body; §I-A).
    pub fn is_positive_coefficient(&self) -> bool {
        self.terms.iter().all(|t| t.coef > 0.0)
    }

    /// True if the degree is at most 1 (an LAQ body; §I-A).
    pub fn is_linear(&self) -> bool {
        self.degree() <= 1
    }

    /// The distinct items referenced, in ascending id order.
    pub fn items(&self) -> Vec<ItemId> {
        let mut v: Vec<ItemId> = self
            .terms
            .iter()
            .flat_map(|t| t.vars.iter().map(|&(i, _)| i))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Largest referenced item id, if any.
    pub fn max_item(&self) -> Option<ItemId> {
        self.items().last().copied()
    }

    /// The same polynomial over a renamed item space: every referenced
    /// item `i` becomes `f(i)`. Term variable lists are re-sorted and
    /// re-merged, so `f` need not be monotone; it must however be
    /// injective on the referenced items — mapping two distinct items of
    /// one term onto the same id would silently merge their exponents.
    ///
    /// This is the shard-local renumbering step of the partitioned
    /// engine: a query assigned to a shard is rewritten from global item
    /// ids onto that shard's dense local ids.
    pub fn map_items(&self, mut f: impl FnMut(ItemId) -> ItemId) -> Polynomial {
        Polynomial::from_terms(self.terms.iter().map(|t| {
            PTerm::new(t.coef, t.vars.iter().map(|&(i, e)| (f(i), e)))
                .expect("coefficient was already valid")
        }))
    }

    /// Evaluates at `values[item.index()]`.
    ///
    /// # Panics
    /// Panics if `values` is shorter than the largest referenced item id;
    /// use [`Polynomial::checked_eval`] for a fallible version.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|t| t.eval(values)).sum()
    }

    /// Evaluates, checking that all referenced items have values.
    pub fn checked_eval(&self, values: &[f64]) -> Result<f64, PolyError> {
        if let Some(mx) = self.max_item() {
            if mx.index() >= values.len() {
                return Err(PolyError::MissingValue { item: mx.0 });
            }
        }
        Ok(self.eval(values))
    }

    /// Splits `P = P1 - P2` into positive-coefficient polynomials `P1`
    /// (positive terms) and `P2` (absolute values of negative terms).
    ///
    /// This is the key observation of §III-B.1 enabling the Half-and-Half
    /// and Different-Sum heuristics.
    pub fn split_pos_neg(&self) -> (Polynomial, Polynomial) {
        let mut pos = Polynomial::zero();
        let mut neg = Polynomial::zero();
        for t in &self.terms {
            if t.coef > 0.0 {
                pos.terms.push(t.clone());
            } else {
                neg.terms.push(t.with_coef(-t.coef));
            }
        }
        (pos, neg)
    }

    /// `self + other`.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let mut p = self.clone();
        for t in &other.terms {
            p.accumulate(t.clone());
        }
        p
    }

    /// `self - other`.
    pub fn sub(&self, other: &Polynomial) -> Polynomial {
        let mut p = self.clone();
        for t in &other.terms {
            p.accumulate(t.with_coef(-t.coef));
        }
        p
    }

    /// `self * alpha` (dropping terms if `alpha == 0`).
    pub fn scale(&self, alpha: f64) -> Polynomial {
        if alpha == 0.0 {
            return Polynomial::zero();
        }
        Polynomial {
            terms: self
                .terms
                .iter()
                .map(|t| t.with_coef(t.coef * alpha))
                .collect(),
        }
    }

    /// `self * other` (term-by-term products, merged).
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut p = Polynomial::zero();
        for a in &self.terms {
            for b in &other.terms {
                let mut vars = a.vars.clone();
                vars.extend_from_slice(&b.vars);
                if let Ok(t) = PTerm::new(a.coef * b.coef, vars) {
                    p.accumulate(t);
                }
            }
        }
        p
    }

    /// True if the two polynomials share no data items (the paper's
    /// *independence*; §III-B.1).
    pub fn is_independent_of(&self, other: &Polynomial) -> bool {
        let mine = self.items();
        other.items().iter().all(|i| mine.binary_search(i).is_err())
    }

    /// Maximum of `|P(v') - P(values)|` over the box
    /// `|v'_i - values_i| <= dabs_i`, by corner enumeration.
    ///
    /// Exact for boxes contained in the positive orthant (each term is then
    /// monotone in each variable, so the extremum sits at a corner). Used to
    /// validate DAB assignments in tests and the simulator; cost is
    /// `O(2^k)` in the number of referenced items, so `k` is capped at 20.
    ///
    /// # Panics
    /// Panics if more than 20 items are referenced.
    pub fn max_abs_deviation_over_box(&self, values: &[f64], dabs: &[f64]) -> f64 {
        let items = self.items();
        assert!(items.len() <= 20, "corner enumeration capped at 20 items");
        let base = self.eval(values);
        let mut worst = 0.0_f64;
        let mut v = values.to_vec();
        for mask in 0u32..(1u32 << items.len()) {
            for (bit, &it) in items.iter().enumerate() {
                let d = dabs[it.index()];
                v[it.index()] = if mask >> bit & 1 == 1 {
                    values[it.index()] + d
                } else {
                    values[it.index()] - d
                };
            }
            worst = worst.max((self.eval(&v) - base).abs());
        }
        worst
    }
}

impl std::fmt::Display for Polynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, t) in self.terms.iter().enumerate() {
            let c = t.coef();
            if i == 0 {
                if c < 0.0 {
                    write!(f, "-")?;
                }
            } else if c < 0.0 {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let a = c.abs();
            if a != 1.0 || t.vars().is_empty() {
                write!(f, "{a}")?;
                if !t.vars().is_empty() {
                    write!(f, "*")?;
                }
            }
            for (j, &(v, e)) in t.vars().iter().enumerate() {
                if j > 0 {
                    write!(f, "*")?;
                }
                if e == 1 {
                    write!(f, "{v}")?;
                } else {
                    write!(f, "{v}^{e}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    #[test]
    fn term_merges_and_sorts_vars() {
        let t = PTerm::new(2.0, [(x(3), 1), (x(1), 2), (x(3), 1)]).unwrap();
        assert_eq!(t.vars(), &[(x(1), 2), (x(3), 2)]);
        assert_eq!(t.degree(), 4);
    }

    #[test]
    fn term_rejects_zero_and_nonfinite_coefficients() {
        assert!(PTerm::new(0.0, []).is_err());
        assert!(PTerm::new(f64::NAN, []).is_err());
        assert!(PTerm::new(f64::INFINITY, []).is_err());
    }

    #[test]
    fn from_terms_merges_duplicates_and_cancels() {
        let p = Polynomial::from_terms([
            PTerm::new(2.0, [(x(0), 1), (x(1), 1)]).unwrap(),
            PTerm::new(3.0, [(x(1), 1), (x(0), 1)]).unwrap(),
            PTerm::new(1.0, [(x(2), 1)]).unwrap(),
            PTerm::new(-1.0, [(x(2), 1)]).unwrap(),
        ]);
        assert_eq!(p.n_terms(), 1);
        assert!((p.eval(&[2.0, 3.0, 100.0]) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn eval_matches_manual_product_query() {
        // Q = x*y, Fig. 2's example.
        let p = Polynomial::term(PTerm::new(1.0, [(x(0), 1), (x(1), 1)]).unwrap());
        assert_eq!(p.eval(&[2.0, 2.0]), 4.0);
        assert_eq!(p.eval(&[3.0, 2.0]), 6.0);
        assert!((p.eval(&[3.9, 2.9]) - 11.31).abs() < 1e-12);
    }

    #[test]
    fn degree_and_classification() {
        let lin = Polynomial::from_terms([
            PTerm::new(1.0, [(x(0), 1)]).unwrap(),
            PTerm::new(2.0, [(x(1), 1)]).unwrap(),
        ]);
        assert!(lin.is_linear());
        assert!(lin.is_positive_coefficient());

        let quad = Polynomial::term(PTerm::new(1.0, [(x(0), 1), (x(1), 1)]).unwrap());
        assert_eq!(quad.degree(), 2);
        assert!(!quad.is_linear());

        let gen = quad.sub(&Polynomial::term(PTerm::new(1.0, [(x(2), 2)]).unwrap()));
        assert!(!gen.is_positive_coefficient());
    }

    #[test]
    fn split_pos_neg_recombines() {
        // P = x y - u v + 2 x^2.
        let p = Polynomial::from_terms([
            PTerm::new(1.0, [(x(0), 1), (x(1), 1)]).unwrap(),
            PTerm::new(-1.0, [(x(2), 1), (x(3), 1)]).unwrap(),
            PTerm::new(2.0, [(x(0), 2)]).unwrap(),
        ]);
        let (p1, p2) = p.split_pos_neg();
        assert!(p1.is_positive_coefficient());
        assert!(p2.is_positive_coefficient());
        // P1 - P2 == P as a function (term order may differ).
        assert!(p1.sub(&p2).sub(&p).is_zero());
        let v = [1.5, 2.5, 0.5, 3.0];
        assert!((p1.eval(&v) - p2.eval(&v) - p.eval(&v)).abs() < 1e-12);
    }

    #[test]
    fn independence_detection() {
        let p1 = Polynomial::term(PTerm::new(1.0, [(x(0), 1), (x(1), 1)]).unwrap());
        let p2 = Polynomial::term(PTerm::new(1.0, [(x(2), 1), (x(3), 1)]).unwrap());
        let p3 = Polynomial::term(PTerm::new(1.0, [(x(1), 2)]).unwrap());
        assert!(p1.is_independent_of(&p2));
        assert!(!p1.is_independent_of(&p3));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Polynomial::from_terms([
            PTerm::new(2.0, [(x(0), 1)]).unwrap(),
            PTerm::new(1.0, [(x(1), 2)]).unwrap(),
        ]);
        let b = Polynomial::term(PTerm::new(3.0, [(x(0), 1)]).unwrap());
        let v = [1.7, 0.9];
        assert!((a.add(&b).eval(&v) - (a.eval(&v) + b.eval(&v))).abs() < 1e-12);
        assert!((a.sub(&b).eval(&v) - (a.eval(&v) - b.eval(&v))).abs() < 1e-12);
        assert!((a.mul(&b).eval(&v) - a.eval(&v) * b.eval(&v)).abs() < 1e-12);
        assert!((a.scale(2.5).eval(&v) - 2.5 * a.eval(&v)).abs() < 1e-12);
        assert!(a.sub(&a).is_zero());
    }

    #[test]
    fn box_deviation_matches_paper_example() {
        // Fig. 2: Q = xy at V = (3, 2) with b = (1, 1): the worst corner is
        // (4, 3) giving |12 - 6| = 6 > 5 = QAB, i.e. b = 1 is invalid there.
        let p = Polynomial::term(PTerm::new(1.0, [(x(0), 1), (x(1), 1)]).unwrap());
        let dev = p.max_abs_deviation_over_box(&[3.0, 2.0], &[1.0, 1.0]);
        assert!((dev - 6.0).abs() < 1e-12);
        // At V = (2, 2) the same DABs are valid: worst corner (3,3) -> 5.
        let dev = p.max_abs_deviation_over_box(&[2.0, 2.0], &[1.0, 1.0]);
        assert!((dev - 5.0).abs() < 1e-12);
    }

    #[test]
    fn checked_eval_reports_missing_values() {
        let p = Polynomial::term(PTerm::new(1.0, [(x(5), 1)]).unwrap());
        assert_eq!(
            p.checked_eval(&[1.0, 2.0]),
            Err(PolyError::MissingValue { item: 5 })
        );
        assert!(p.checked_eval(&[0.0; 6]).is_ok());
    }

    #[test]
    fn display_is_readable() {
        let p = Polynomial::from_terms([
            PTerm::new(1.0, [(x(0), 1), (x(1), 1)]).unwrap(),
            PTerm::new(-2.0, [(x(2), 2)]).unwrap(),
        ]);
        assert_eq!(format!("{p}"), "x0*x1 - 2*x2^2");
    }
}
