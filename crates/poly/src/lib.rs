//! # pq-poly — polynomial continuous queries over dynamic data
//!
//! Query representation for the polynomial-query monitoring system of
//! Shah & Ramamritham (ICDE 2008):
//!
//! * [`item`] — data-item identities ([`ItemId`], [`ItemCatalog`]);
//! * [`polynomial`] — sparse multivariate polynomials with integer
//!   exponents, splitting `P = P1 - P2`, exact worst-case box deviation;
//! * [`plan`] — compiled evaluation plans ([`EvalPlan`]): flat
//!   structure-of-arrays terms, unrolled degree-1/2 kernels, an inverted
//!   item → term index and exact `delta_eval` for incremental
//!   maintenance of query values;
//! * [`shared`] — the cross-query evaluation compiler ([`SharedPlan`]):
//!   a staged `parse → analyze → optimize → plan` pipeline over a whole
//!   query book that deduplicates monomials via CSE and scatters each
//!   distinct-monomial delta to all subscribing queries through CSR
//!   layouts, with incremental query admission/retirement;
//! * [`query`] — queries `P : B` with QABs, classification
//!   (LAQ / PPQ / general PQ) and the paper's workload constructors
//!   (portfolio, arbitrage, linear aggregate);
//! * [`constraint`] — symbolic expansion of the necessary-and-sufficient
//!   DAB conditions `P(V+c+b) − P(V+c) ≤ B` into [`pq_gp`] posynomials;
//! * [`parse`] — a small expression parser for examples and tools.

#![warn(missing_docs)]

pub mod constraint;
pub mod error;
pub mod item;
pub mod parse;
pub mod plan;
pub mod polynomial;
pub mod query;
pub mod shared;

pub use constraint::{
    coupled_items, deviation_posynomial, linearized_sufficient, DabVarIndexer, DabVarMap,
    PartialDabVarMap,
};
pub use error::PolyError;
pub use item::{ItemCatalog, ItemId};
pub use parse::parse_polynomial;
pub use plan::EvalPlan;
pub use polynomial::{PTerm, Polynomial};
pub use query::{PolynomialQuery, QueryClass, QueryId};
pub use shared::{shared_query_loads, SharedPlan};
