//! Polynomial continuous queries with accuracy bounds.
//!
//! A query `Q = P : B` pairs a polynomial body with a Query Accuracy Bound
//! (QAB): the user tolerates `|V(C,Q) - V(S,Q)| <= B` at all times (§I).

use crate::error::PolyError;
use crate::item::ItemId;
use crate::polynomial::{PTerm, Polynomial};

/// Dense identifier of a registered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// The paper's query taxonomy (§I-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Degree <= 1: Linear Aggregate Query. Admits closed-form DABs.
    LinearAggregate,
    /// Degree > 1, all coefficients positive: PPQ. Admits the optimal GP
    /// formulations of §III-A.
    PositiveCoefficient,
    /// Degree > 1 with mixed-sign coefficients: general PQ. Handled by the
    /// Half-and-Half / Different-Sum heuristics of §III-B.
    General,
}

/// A continuous polynomial query `P : B`.
#[derive(Debug, Clone, PartialEq)]
pub struct PolynomialQuery {
    poly: Polynomial,
    qab: f64,
}

impl PolynomialQuery {
    /// Creates a query with accuracy bound `qab > 0`.
    pub fn new(poly: Polynomial, qab: f64) -> Result<Self, PolyError> {
        if poly.is_zero() {
            return Err(PolyError::EmptyPolynomial);
        }
        if !(qab.is_finite() && qab > 0.0) {
            return Err(PolyError::InvalidBound(qab));
        }
        Ok(PolynomialQuery { poly, qab })
    }

    /// The polynomial body.
    #[inline]
    pub fn poly(&self) -> &Polynomial {
        &self.poly
    }

    /// The query accuracy bound `B`.
    #[inline]
    pub fn qab(&self) -> f64 {
        self.qab
    }

    /// Classifies the query per §I-A.
    pub fn class(&self) -> QueryClass {
        if self.poly.is_linear() {
            QueryClass::LinearAggregate
        } else if self.poly.is_positive_coefficient() {
            QueryClass::PositiveCoefficient
        } else {
            QueryClass::General
        }
    }

    /// Items referenced by the query.
    pub fn items(&self) -> Vec<ItemId> {
        self.poly.items()
    }

    /// Evaluates the query body at `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.poly.eval(values)
    }

    /// Returns a copy with the QAB replaced (used when deriving e.g. the
    /// `B/2` sub-queries of Half-and-Half).
    pub fn with_qab(&self, qab: f64) -> Result<Self, PolyError> {
        PolynomialQuery::new(self.poly.clone(), qab)
    }

    /// The same query over a renamed item space (QAB unchanged); see
    /// [`Polynomial::map_items`]. `f` must be injective on the query's
    /// items.
    pub fn map_items(&self, f: impl FnMut(ItemId) -> ItemId) -> Self {
        PolynomialQuery {
            poly: self.poly.map_items(f),
            qab: self.qab,
        }
    }

    /// A *global portfolio query* (Query 1(a) in the paper):
    /// `sum_i w_i * x_i * y_i : B`, e.g. holdings × price × exchange rate.
    pub fn portfolio(
        legs: impl IntoIterator<Item = (f64, ItemId, ItemId)>,
        qab: f64,
    ) -> Result<Self, PolyError> {
        let mut terms = Vec::new();
        for (w, a, b) in legs {
            terms.push(PTerm::new(w, [(a, 1), (b, 1)])?);
        }
        PolynomialQuery::new(Polynomial::from_terms(terms), qab)
    }

    /// An *arbitrage query* (Query 1(b)): buy-side minus sell-side products,
    /// `sum_i w_i x_i y_i - sum_j w'_j u_j v_j : B`.
    pub fn arbitrage(
        buy: impl IntoIterator<Item = (f64, ItemId, ItemId)>,
        sell: impl IntoIterator<Item = (f64, ItemId, ItemId)>,
        qab: f64,
    ) -> Result<Self, PolyError> {
        let mut terms = Vec::new();
        for (w, a, b) in buy {
            terms.push(PTerm::new(w, [(a, 1), (b, 1)])?);
        }
        for (w, a, b) in sell {
            terms.push(PTerm::new(-w, [(a, 1), (b, 1)])?);
        }
        PolynomialQuery::new(Polynomial::from_terms(terms), qab)
    }

    /// A *linear aggregate query*: `sum_i w_i x_i : B`.
    pub fn linear_aggregate(
        weights: impl IntoIterator<Item = (f64, ItemId)>,
        qab: f64,
    ) -> Result<Self, PolyError> {
        let mut terms = Vec::new();
        for (w, i) in weights {
            terms.push(PTerm::new(w, [(i, 1)])?);
        }
        PolynomialQuery::new(Polynomial::from_terms(terms), qab)
    }
}

impl std::fmt::Display for PolynomialQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} : {}", self.poly, self.qab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    #[test]
    fn rejects_bad_bounds_and_empty_bodies() {
        let p = Polynomial::term(PTerm::new(1.0, [(x(0), 1)]).unwrap());
        assert!(PolynomialQuery::new(p.clone(), 0.0).is_err());
        assert!(PolynomialQuery::new(p.clone(), -1.0).is_err());
        assert!(PolynomialQuery::new(p, f64::NAN).is_err());
        assert!(PolynomialQuery::new(Polynomial::zero(), 1.0).is_err());
    }

    #[test]
    fn classification_covers_all_classes() {
        let laq = PolynomialQuery::linear_aggregate([(1.0, x(0)), (2.0, x(1))], 1.0).unwrap();
        assert_eq!(laq.class(), QueryClass::LinearAggregate);

        let ppq = PolynomialQuery::portfolio([(10.0, x(0), x(1))], 1.0).unwrap();
        assert_eq!(ppq.class(), QueryClass::PositiveCoefficient);

        let pq = PolynomialQuery::arbitrage([(1.0, x(0), x(1))], [(1.0, x(2), x(3))], 1.0).unwrap();
        assert_eq!(pq.class(), QueryClass::General);
    }

    #[test]
    fn portfolio_eval_matches_manual() {
        // 3 * x0 * x1 + 2 * x2 * x3 at (2, 5, 4, 0.5) = 30 + 4.
        let q = PolynomialQuery::portfolio([(3.0, x(0), x(1)), (2.0, x(2), x(3))], 1.0).unwrap();
        assert!((q.eval(&[2.0, 5.0, 4.0, 0.5]) - 34.0).abs() < 1e-12);
    }

    #[test]
    fn arbitrage_has_negative_sell_side() {
        let q = PolynomialQuery::arbitrage([(1.0, x(0), x(1))], [(2.0, x(2), x(3))], 1.0).unwrap();
        // x0 x1 - 2 x2 x3 at (3, 4, 1, 2) = 12 - 4.
        assert!((q.eval(&[3.0, 4.0, 1.0, 2.0]) - 8.0).abs() < 1e-12);
        let (p1, p2) = q.poly().split_pos_neg();
        assert_eq!(p1.n_terms(), 1);
        assert_eq!(p2.n_terms(), 1);
    }

    #[test]
    fn with_qab_preserves_body() {
        let q = PolynomialQuery::portfolio([(1.0, x(0), x(1))], 4.0).unwrap();
        let h = q.with_qab(2.0).unwrap();
        assert_eq!(h.qab(), 2.0);
        assert_eq!(h.poly(), q.poly());
    }
}
