//! Data-item identities.
//!
//! A *data item* is a continuously changing scalar served by a source —
//! a stock price, an exchange rate, a sensor coordinate. Items are
//! identified by dense integer ids so that per-item state (current values,
//! DABs, rates of change) can live in flat vectors.

use std::collections::HashMap;

/// Dense identifier of a data item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u32);

impl ItemId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Interning catalog mapping human-readable item names to dense [`ItemId`]s.
#[derive(Debug, Clone, Default)]
pub struct ItemCatalog {
    names: Vec<String>,
    index: HashMap<String, ItemId>,
}

impl ItemCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog pre-populated with `n` items named `x0..x{n-1}`.
    pub fn with_anonymous_items(n: usize) -> Self {
        let mut c = Self::new();
        for i in 0..n {
            c.intern(&format!("x{i}"));
        }
        c
    }

    /// Returns the id for `name`, creating it on first use.
    pub fn intern(&mut self, name: &str) -> ItemId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = ItemId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing name.
    pub fn get(&self, name: &str) -> Option<ItemId> {
        self.index.get(name).copied()
    }

    /// The name of `id`, if it exists.
    pub fn name(&self, id: ItemId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of interned items.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no items are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ItemId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut c = ItemCatalog::new();
        let a = c.intern("ibm");
        let b = c.intern("msft");
        assert_eq!(c.intern("ibm"), a);
        assert_ne!(a, b);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn name_round_trips() {
        let mut c = ItemCatalog::new();
        let id = c.intern("usd_inr");
        assert_eq!(c.name(id), Some("usd_inr"));
        assert_eq!(c.get("usd_inr"), Some(id));
        assert_eq!(c.get("missing"), None);
        assert_eq!(c.name(ItemId(99)), None);
    }

    #[test]
    fn anonymous_items_use_dense_names() {
        let c = ItemCatalog::with_anonymous_items(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get("x0"), Some(ItemId(0)));
        assert_eq!(c.get("x2"), Some(ItemId(2)));
    }

    #[test]
    fn iter_preserves_id_order() {
        let mut c = ItemCatalog::new();
        c.intern("a");
        c.intern("b");
        let v: Vec<_> = c.iter().collect();
        assert_eq!(v, vec![(ItemId(0), "a"), (ItemId(1), "b")]);
    }
}
