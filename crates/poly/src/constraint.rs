//! Symbolic construction of DAB constraints as GP posynomials.
//!
//! For a positive-coefficient polynomial `P` with current values `V`, the
//! necessary-and-sufficient condition for primary DABs `b` to keep the query
//! within its QAB over the validity range defined by secondary DABs `c`
//! (§III-A.2, Eq. 2) is
//!
//! ```text
//! P(V + c + b) - P(V + c)  <=  B
//! ```
//!
//! (the all-upward corner is the worst case for a PPQ over positive data:
//! every term of the deviation expansion is nonnegative and increasing in
//! each displacement). With `c = 0` this is Eq. 1, the Optimal Refresh
//! condition of §III-A.1.
//!
//! This module expands the left-hand side *exactly* by multinomial
//! expansion — every surviving term contains at least one factor of `b`
//! and has a positive coefficient, so the result is a posynomial in the
//! GP variables `(b, c)` suitable for [`pq_gp`].

use crate::error::PolyError;
use crate::item::ItemId;
use crate::polynomial::Polynomial;
use pq_gp::{Monomial, Posynomial};

/// Maps an item to the GP variable index of its primary DAB `b` and
/// (optionally) its secondary DAB `c`.
///
/// Implementations decide the layout: a single-query layout packs `b`s then
/// `c`s; the AAO multi-query layout shares `b`s across queries but gives
/// each `<query, item>` pair its own `c` (§IV).
pub trait DabVarIndexer {
    /// GP variable index of `b_item`.
    fn primary(&self, item: ItemId) -> usize;
    /// GP variable index of `c_item`, or `None` for single-DAB
    /// (Optimal Refresh) formulations.
    fn secondary(&self, item: ItemId) -> Option<usize>;
}

/// The standard single-query layout: for `items[k]`, `b` is variable `k`
/// and (if enabled) `c` is variable `n + k`; callers may append further
/// variables (such as the recomputation rate `R`) from index
/// [`DabVarMap::n_vars`] upward.
#[derive(Debug, Clone)]
pub struct DabVarMap {
    items: Vec<ItemId>,
    with_secondary: bool,
}

impl DabVarMap {
    /// Builds a layout over the given items (deduplicated, sorted).
    pub fn new(mut items: Vec<ItemId>, with_secondary: bool) -> Self {
        items.sort();
        items.dedup();
        DabVarMap {
            items,
            with_secondary,
        }
    }

    /// Layout over all items of a polynomial.
    pub fn for_polynomial(poly: &Polynomial, with_secondary: bool) -> Self {
        DabVarMap::new(poly.items(), with_secondary)
    }

    /// The items covered, in variable order.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Number of items `n`.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Total GP variables used by this layout (`n` or `2n`).
    pub fn n_vars(&self) -> usize {
        if self.with_secondary {
            2 * self.items.len()
        } else {
            self.items.len()
        }
    }

    /// True if the layout includes secondary DABs.
    pub fn has_secondary(&self) -> bool {
        self.with_secondary
    }

    fn position(&self, item: ItemId) -> usize {
        self.items
            .binary_search(&item)
            .expect("item not covered by DabVarMap")
    }
}

impl DabVarIndexer for DabVarMap {
    fn primary(&self, item: ItemId) -> usize {
        self.position(item)
    }

    fn secondary(&self, item: ItemId) -> Option<usize> {
        self.with_secondary
            .then(|| self.items.len() + self.position(item))
    }
}

/// Items whose *secondary* DAB genuinely affects the deviation condition:
/// those occurring in some term with exponent >= 2 or together with other
/// items. An item appearing only linearly (alone, exponent 1) contributes
/// the value-independent deviation `w * b` — its reference value can never
/// invalidate an assignment, so it needs no secondary DAB and no
/// recomputation coupling (the same observation that makes LAQs easy;
/// paper footnote 2). Leaving such a `c` variable in the GP makes the
/// barrier unbounded along it.
pub fn coupled_items(poly: &Polynomial) -> Vec<ItemId> {
    let mut v: Vec<ItemId> = poly
        .terms()
        .iter()
        .filter(|t| t.degree() >= 2)
        .flat_map(|t| t.vars().iter().map(|&(i, _)| i))
        .collect();
    v.sort();
    v.dedup();
    v
}

/// Variable layout with secondary DABs only for [`coupled_items`]:
/// primary `b` for `items[k]` at index `k`; secondary `c` for the `j`-th
/// coupled item at index `n + j`; callers append extra variables (such as
/// `R`) from [`PartialDabVarMap::n_vars`] upward.
#[derive(Debug, Clone)]
pub struct PartialDabVarMap {
    items: Vec<ItemId>,
    coupled: Vec<ItemId>,
}

impl PartialDabVarMap {
    /// Builds the layout for a polynomial.
    pub fn for_polynomial(poly: &Polynomial) -> Self {
        PartialDabVarMap {
            items: poly.items(),
            coupled: coupled_items(poly),
        }
    }

    /// All items, in primary-variable order.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// The coupled items, in secondary-variable order.
    pub fn coupled(&self) -> &[ItemId] {
        &self.coupled
    }

    /// Number of items `n`.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Total GP variables used by this layout (`n + #coupled`).
    pub fn n_vars(&self) -> usize {
        self.items.len() + self.coupled.len()
    }
}

impl DabVarIndexer for PartialDabVarMap {
    fn primary(&self, item: ItemId) -> usize {
        self.items
            .binary_search(&item)
            .expect("item not covered by PartialDabVarMap")
    }

    fn secondary(&self, item: ItemId) -> Option<usize> {
        self.coupled
            .binary_search(&item)
            .ok()
            .map(|j| self.items.len() + j)
    }
}

/// Expands `P(V + c + b) - P(V + c)` into a posynomial over the GP
/// variables given by `vars`.
///
/// When `vars.secondary` returns `None` for items, the expansion is
/// `P(V + b) - P(V)` (Optimal Refresh, Eq. 1).
///
/// # Errors
/// * [`PolyError::NotPositiveCoefficient`] if `poly` has negative weights;
/// * [`PolyError::NegativeValue`] if any referenced current value is
///   negative (positive data is what makes the all-up corner worst);
/// * [`PolyError::MissingValue`] if `values` is too short;
/// * [`PolyError::EmptyPolynomial`] for the zero polynomial.
pub fn deviation_posynomial(
    poly: &Polynomial,
    values: &[f64],
    vars: &dyn DabVarIndexer,
) -> Result<Posynomial, PolyError> {
    if poly.is_zero() {
        return Err(PolyError::EmptyPolynomial);
    }
    if !poly.is_positive_coefficient() {
        return Err(PolyError::NotPositiveCoefficient);
    }
    for item in poly.items() {
        let v = *values
            .get(item.index())
            .ok_or(PolyError::MissingValue { item: item.0 })?;
        if v < 0.0 {
            return Err(PolyError::NegativeValue {
                item: item.0,
                value: v,
            });
        }
    }

    // Partial expansion entries: (coefficient, gp exponents, has a b factor).
    struct Entry {
        coef: f64,
        exps: Vec<(usize, f64)>,
        has_b: bool,
    }

    let mut out = Posynomial::zero();
    for term in poly.terms() {
        let mut partial = vec![Entry {
            coef: term.coef(),
            exps: Vec::new(),
            has_b: true, // becomes "true iff any b" after first item below
        }];
        let mut first = true;
        for &(item, p) in term.vars() {
            let v = values[item.index()];
            let b_var = vars.primary(item);
            let c_var = vars.secondary(item);
            let factors = expand_item_factor(v, p, b_var, c_var);
            let mut next = Vec::with_capacity(partial.len() * factors.len());
            for e in &partial {
                for f in &factors {
                    let mut exps = e.exps.clone();
                    exps.extend_from_slice(&f.exps);
                    next.push(Entry {
                        coef: e.coef * f.coef,
                        exps,
                        has_b: (e.has_b && !first) || f.has_b,
                    });
                }
            }
            partial = next;
            first = false;
        }
        // A constant term (no vars) contributes nothing to the deviation.
        if first {
            continue;
        }
        for e in partial {
            // Entries with no b factor are exactly the expansion of
            // P(V + c); they cancel in the subtraction.
            if !e.has_b || e.coef == 0.0 {
                continue;
            }
            let m = Monomial::new(e.coef, e.exps).expect("expansion coefficients are positive");
            out.push(m);
        }
    }
    out.simplify();
    if out.is_zero() {
        // All items had zero exponent / the polynomial was constant.
        return Err(PolyError::EmptyPolynomial);
    }
    Ok(out)
}

/// First-order *sufficient* condition (not necessary): bounds the deviation
/// by `sum_i b_i * max_box |dP/dx_i|`, with the partial derivatives
/// evaluated at the all-up corner `V + c + b` and expanded exactly.
///
/// Strictly more conservative than [`deviation_posynomial`]; exposed for
/// the ablation comparing optimal against gradient-style filter allocation.
pub fn linearized_sufficient(
    poly: &Polynomial,
    values: &[f64],
    vars: &dyn DabVarIndexer,
) -> Result<Posynomial, PolyError> {
    if poly.is_zero() {
        return Err(PolyError::EmptyPolynomial);
    }
    if !poly.is_positive_coefficient() {
        return Err(PolyError::NotPositiveCoefficient);
    }
    let mut out = Posynomial::zero();
    for item in poly.items() {
        let b_var = vars.primary(item);
        let dp = partial_derivative(poly, item);
        if dp.is_zero() {
            continue;
        }
        // Expand dP/dx_i at (V + c + b) — all terms survive (no
        // subtraction here), multiplied by b_i.
        let expanded = expand_at_displaced(&dp, values, vars)?;
        let bi = Monomial::new(1.0, [(b_var, 1.0)]).expect("unit monomial");
        out.add(&expanded.mul_monomial(&bi));
    }
    out.simplify();
    if out.is_zero() {
        return Err(PolyError::EmptyPolynomial);
    }
    Ok(out)
}

/// `dP/dx_item` for integer-exponent polynomials.
fn partial_derivative(poly: &Polynomial, item: ItemId) -> Polynomial {
    use crate::polynomial::PTerm;
    let mut terms = Vec::new();
    for t in poly.terms() {
        if let Some(&(_, e)) = t.vars().iter().find(|&&(i, _)| i == item) {
            let coef = t.coef() * e as f64;
            let vars: Vec<(ItemId, u32)> = t
                .vars()
                .iter()
                .filter_map(|&(i, p)| {
                    if i == item {
                        (p > 1).then_some((i, p - 1))
                    } else {
                        Some((i, p))
                    }
                })
                .collect();
            if let Ok(t) = PTerm::new(coef, vars) {
                terms.push(t);
            }
        }
    }
    Polynomial::from_terms(terms)
}

/// Expands `P(V + c + b)` fully (no subtraction) into a posynomial.
fn expand_at_displaced(
    poly: &Polynomial,
    values: &[f64],
    vars: &dyn DabVarIndexer,
) -> Result<Posynomial, PolyError> {
    let mut out = Posynomial::zero();
    for term in poly.terms() {
        let mut partial: Vec<(f64, Vec<(usize, f64)>)> = vec![(term.coef(), Vec::new())];
        for &(item, p) in term.vars() {
            let v = *values
                .get(item.index())
                .ok_or(PolyError::MissingValue { item: item.0 })?;
            if v < 0.0 {
                return Err(PolyError::NegativeValue {
                    item: item.0,
                    value: v,
                });
            }
            let factors = expand_item_factor(v, p, vars.primary(item), vars.secondary(item));
            let mut next = Vec::with_capacity(partial.len() * factors.len());
            for (c0, e0) in &partial {
                for f in &factors {
                    let mut exps = e0.clone();
                    exps.extend_from_slice(&f.exps);
                    next.push((c0 * f.coef, exps));
                }
            }
            partial = next;
        }
        for (c, e) in partial {
            if c == 0.0 {
                continue;
            }
            out.push(Monomial::new(c, e).expect("positive expansion coefficient"));
        }
    }
    out.simplify();
    Ok(out)
}

/// One factor of the expansion: a monomial in the GP variables.
struct Factor {
    coef: f64,
    exps: Vec<(usize, f64)>,
    has_b: bool,
}

/// Expands `(V + c + b)^p` (or `(V + b)^p` when `c_var` is `None`) into
/// monomial factors over the GP variables.
fn expand_item_factor(v: f64, p: u32, b_var: usize, c_var: Option<usize>) -> Vec<Factor> {
    let mut out = Vec::new();
    match c_var {
        Some(cv) => {
            // Multinomial over (V, c, b): p! / (j! k! l!) * V^j c^k b^l.
            for l in 0..=p {
                for k in 0..=(p - l) {
                    let j = p - l - k;
                    let coef = multinomial3(p, j, k, l) * pow_skip_zero(v, j);
                    if coef == 0.0 {
                        continue;
                    }
                    let mut exps = Vec::with_capacity(2);
                    if k > 0 {
                        exps.push((cv, k as f64));
                    }
                    if l > 0 {
                        exps.push((b_var, l as f64));
                    }
                    out.push(Factor {
                        coef,
                        exps,
                        has_b: l > 0,
                    });
                }
            }
        }
        None => {
            // Binomial over (V, b): C(p, l) * V^{p-l} b^l.
            for l in 0..=p {
                let j = p - l;
                let coef = binomial(p, l) * pow_skip_zero(v, j);
                if coef == 0.0 {
                    continue;
                }
                let mut exps = Vec::with_capacity(1);
                if l > 0 {
                    exps.push((b_var, l as f64));
                }
                out.push(Factor {
                    coef,
                    exps,
                    has_b: l > 0,
                });
            }
        }
    }
    out
}

/// `v^j`, treating `0^0 = 1`.
fn pow_skip_zero(v: f64, j: u32) -> f64 {
    if j == 0 {
        1.0
    } else {
        v.powi(j as i32)
    }
}

fn binomial(n: u32, k: u32) -> f64 {
    let mut r = 1.0;
    for i in 0..k {
        r = r * (n - i) as f64 / (i + 1) as f64;
    }
    r
}

fn multinomial3(p: u32, j: u32, k: u32, l: u32) -> f64 {
    debug_assert_eq!(j + k + l, p);
    binomial(p, j) * binomial(p - j, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polynomial::PTerm;

    fn x(i: u32) -> ItemId {
        ItemId(i)
    }

    fn product_xy() -> Polynomial {
        Polynomial::term(PTerm::new(1.0, [(x(0), 1), (x(1), 1)]).unwrap())
    }

    #[test]
    fn eq1_for_product_query() {
        // P = xy at V = (Vx, Vy), single DAB:
        //   P(V+b) - P(V) = Vx*by + Vy*bx + bx*by  (Eq. 1).
        let vmap = DabVarMap::for_polynomial(&product_xy(), false);
        let g = deviation_posynomial(&product_xy(), &[3.0, 2.0], &vmap).unwrap();
        assert_eq!(g.n_terms(), 3);
        // Evaluate at b = (bx, by) and compare against the closed form.
        for (bx, by) in [(0.5, 0.5), (1.0, 2.0), (0.1, 3.0)] {
            let lhs = g.eval(&[bx, by]);
            let rhs = 3.0 * by + 2.0 * bx + bx * by;
            assert!((lhs - rhs).abs() < 1e-12, "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn eq2_for_product_query_with_secondary() {
        // P = xy, dual DAB:
        //   (Vx + cx) by + (Vy + cy) bx + bx by   (Eq. 2).
        let p = product_xy();
        let vmap = DabVarMap::for_polynomial(&p, true);
        let g = deviation_posynomial(&p, &[3.0, 2.0], &vmap).unwrap();
        // Vars: bx=0, by=1, cx=2, cy=3.
        for (bx, by, cx, cy) in [(0.5, 0.5, 1.0, 1.5), (0.2, 0.7, 0.3, 0.9)] {
            let lhs = g.eval(&[bx, by, cx, cy]);
            let rhs = (3.0 + cx) * by + (2.0 + cy) * bx + bx * by;
            assert!((lhs - rhs).abs() < 1e-12, "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn expansion_matches_numeric_difference_for_squares() {
        // P = 2 x^2 y + y^3: check the expansion numerically against
        // P(V+c+b) - P(V+c) at random-ish points.
        let p = Polynomial::from_terms([
            PTerm::new(2.0, [(x(0), 2), (x(1), 1)]).unwrap(),
            PTerm::new(1.0, [(x(1), 3)]).unwrap(),
        ]);
        let vmap = DabVarMap::for_polynomial(&p, true);
        let v = [1.5, 2.5];
        let g = deviation_posynomial(&p, &v, &vmap).unwrap();
        for (bx, by, cx, cy) in [(0.3, 0.1, 0.2, 0.4), (1.0, 1.0, 1.0, 1.0)] {
            let up = p.eval(&[v[0] + cx + bx, v[1] + cy + by]);
            let mid = p.eval(&[v[0] + cx, v[1] + cy]);
            let lhs = g.eval(&[bx, by, cx, cy]);
            assert!((lhs - (up - mid)).abs() < 1e-9, "{lhs} vs {}", up - mid);
        }
    }

    #[test]
    fn expansion_is_exact_worst_case_over_box() {
        // For a PPQ the posynomial at (b, c=0) equals the exact worst-case
        // deviation over the box |x - V| <= b.
        let p = Polynomial::from_terms([
            PTerm::new(1.0, [(x(0), 1), (x(1), 1)]).unwrap(),
            PTerm::new(0.5, [(x(0), 2)]).unwrap(),
        ]);
        let vmap = DabVarMap::for_polynomial(&p, false);
        let v = [3.0, 2.0];
        let b = [0.4, 0.7];
        let g = deviation_posynomial(&p, &v, &vmap).unwrap();
        let exact = p.max_abs_deviation_over_box(&v, &[0.4, 0.7]);
        assert!((g.eval(&b) - exact).abs() < 1e-9);
    }

    #[test]
    fn rejects_negative_coefficients_and_values() {
        let p = product_xy().sub(&Polynomial::term(PTerm::new(1.0, [(x(2), 1)]).unwrap()));
        let vmap = DabVarMap::for_polynomial(&p, false);
        assert_eq!(
            deviation_posynomial(&p, &[1.0, 1.0, 1.0], &vmap),
            Err(PolyError::NotPositiveCoefficient)
        );
        let q = product_xy();
        let vmap = DabVarMap::for_polynomial(&q, false);
        assert!(matches!(
            deviation_posynomial(&q, &[1.0, -1.0], &vmap),
            Err(PolyError::NegativeValue { item: 1, .. })
        ));
        assert!(matches!(
            deviation_posynomial(&q, &[1.0], &vmap),
            Err(PolyError::MissingValue { item: 1 })
        ));
    }

    #[test]
    fn zero_values_drop_terms_but_keep_b_products() {
        // P = xy at V = (0, 0): deviation is exactly bx * by.
        let p = product_xy();
        let vmap = DabVarMap::for_polynomial(&p, false);
        let g = deviation_posynomial(&p, &[0.0, 0.0], &vmap).unwrap();
        assert_eq!(g.n_terms(), 1);
        assert!((g.eval(&[2.0, 3.0]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn linearized_is_sufficient_but_conservative() {
        let p = product_xy();
        let vmap = DabVarMap::for_polynomial(&p, false);
        let v = [3.0, 2.0];
        let exact = deviation_posynomial(&p, &v, &vmap).unwrap();
        let lin = linearized_sufficient(&p, &v, &vmap).unwrap();
        for b in [[0.5, 0.5], [1.0, 0.2], [2.0, 2.0]] {
            assert!(
                lin.eval(&b) >= exact.eval(&b) - 1e-12,
                "linearized must dominate the exact deviation"
            );
        }
        // lin = bx*(Vy + by) + by*(Vx + bx) has the cross term twice.
        let b = [1.0, 1.0];
        assert!((lin.eval(&b) - (1.0 * 3.0 + 1.0 * 2.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn var_map_layout_is_stable() {
        let p = Polynomial::from_terms([PTerm::new(1.0, [(x(7), 1), (x(2), 1)]).unwrap()]);
        let vmap = DabVarMap::for_polynomial(&p, true);
        assert_eq!(vmap.items(), &[x(2), x(7)]);
        assert_eq!(vmap.primary(x(2)), 0);
        assert_eq!(vmap.primary(x(7)), 1);
        assert_eq!(vmap.secondary(x(2)), Some(2));
        assert_eq!(vmap.secondary(x(7)), Some(3));
        assert_eq!(vmap.n_vars(), 4);
    }

    #[test]
    fn coupled_items_excludes_linear_only_items() {
        // P = x0 + x1 x2 + x3^2: x0 is linear-only; x1, x2, x3 coupled.
        let p = Polynomial::from_terms([
            PTerm::new(1.0, [(x(0), 1)]).unwrap(),
            PTerm::new(1.0, [(x(1), 1), (x(2), 1)]).unwrap(),
            PTerm::new(2.0, [(x(3), 2)]).unwrap(),
        ]);
        assert_eq!(coupled_items(&p), vec![x(1), x(2), x(3)]);
        let vmap = PartialDabVarMap::for_polynomial(&p);
        assert_eq!(vmap.n_items(), 4);
        assert_eq!(vmap.n_vars(), 7);
        assert_eq!(vmap.primary(x(0)), 0);
        assert_eq!(vmap.secondary(x(0)), None);
        assert_eq!(vmap.secondary(x(1)), Some(4));
        assert_eq!(vmap.secondary(x(3)), Some(6));
    }

    #[test]
    fn partial_map_expansion_has_no_uncoupled_secondary() {
        // With the partial layout, the deviation of x0 + x1 x2 uses b0 but
        // never any c for x0 — and matches the numeric difference.
        let p = Polynomial::from_terms([
            PTerm::new(1.0, [(x(0), 1)]).unwrap(),
            PTerm::new(1.0, [(x(1), 1), (x(2), 1)]).unwrap(),
        ]);
        let vmap = PartialDabVarMap::for_polynomial(&p);
        let v = [100.0, 10.0, 9.0];
        let g = deviation_posynomial(&p, &v, &vmap).unwrap();
        // vars: b0 b1 b2 c1 c2.
        let xpt = [0.5, 0.1, 0.2, 0.4, 0.3];
        let up = p.eval(&[
            v[0] + xpt[0],
            v[1] + xpt[3] + xpt[1],
            v[2] + xpt[4] + xpt[2],
        ]);
        let mid = p.eval(&[v[0], v[1] + xpt[3], v[2] + xpt[4]]);
        assert!((g.eval(&xpt) - (up - mid)).abs() < 1e-9);
    }

    #[test]
    fn constant_polynomial_yields_empty_deviation() {
        let p = Polynomial::term(PTerm::constant(5.0).unwrap());
        let vmap = DabVarMap::new(vec![], false);
        assert_eq!(
            deviation_posynomial(&p, &[], &vmap),
            Err(PolyError::EmptyPolynomial)
        );
    }
}
