//! # pq-ddm — dynamic data: traces, rates and data-dynamics models
//!
//! Substrate for the polynomial-query monitoring system: synthetic
//! replacements for the paper's Yahoo! Finance traces ([`trace`]), the
//! rate-of-change estimators of §V-A ([`rate`]), and the monotonic /
//! random-walk refresh-rate models that feed the GP objectives
//! ([`model`]).

#![warn(missing_docs)]

pub mod model;
pub mod rate;
pub mod trace;

pub use model::DataDynamicsModel;
pub use rate::RateEstimator;
pub use trace::{Trace, TraceSet};
