//! Data-dynamics models (ddms).
//!
//! To minimize refreshes the optimizer needs an estimate of how many
//! refreshes a DAB of width `b` incurs per unit time. The paper considers
//! two models (§III-A.1, §III-A.5), both also used by earlier work
//! (Olston & Widom SIGMOD'03; Gupta et al. WWW'05):
//!
//! * **Monotonic** — data drifts at rate `lambda`, so an item escapes a
//!   width-`b` filter every `b / lambda` time units: `lambda / b`
//!   refreshes per unit time.
//! * **Random walk** — with per-step deviation `lambda`, the expected
//!   escape time from a width-`b` interval scales as `(b / lambda)^2`:
//!   `(lambda / b)^2` refreshes per unit time.
//!
//! Both estimates are posynomial in `b`, which is what lets the refresh
//! objective enter a geometric program.

use pq_gp::{Monomial, Posynomial};

/// The assumed model of data evolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataDynamicsModel {
    /// Uniform-rate monotonic drift: refresh rate `lambda / b`.
    Monotonic,
    /// Random walk: refresh rate `(lambda / b)^2`.
    RandomWalk,
}

impl DataDynamicsModel {
    /// Estimated refreshes per unit time for rate `lambda` and DAB `b`.
    pub fn refresh_rate(self, lambda: f64, dab: f64) -> f64 {
        debug_assert!(lambda >= 0.0 && dab > 0.0);
        match self {
            DataDynamicsModel::Monotonic => lambda / dab,
            DataDynamicsModel::RandomWalk => {
                let r = lambda / dab;
                r * r
            }
        }
    }

    /// The refresh-rate term as a GP monomial in the DAB variable
    /// `b_var`: `lambda * b^-1` or `lambda^2 * b^-2`.
    ///
    /// Returns `None` when `lambda` is zero or non-finite (an immobile item
    /// contributes no refreshes and must not enter the objective).
    pub fn refresh_monomial(self, lambda: f64, b_var: usize) -> Option<Monomial> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return None;
        }
        let m = match self {
            DataDynamicsModel::Monotonic => Monomial::new(lambda, [(b_var, -1.0)]),
            DataDynamicsModel::RandomWalk => Monomial::new(lambda * lambda, [(b_var, -2.0)]),
        };
        Some(m.expect("positive lambda yields valid monomial"))
    }

    /// Sum of refresh-rate monomials for `(lambda_i, b_var_i)` pairs — the
    /// refresh part of the paper's objective functions.
    pub fn refresh_objective(self, items: impl IntoIterator<Item = (f64, usize)>) -> Posynomial {
        let mut p = Posynomial::zero();
        for (lambda, var) in items {
            if let Some(m) = self.refresh_monomial(lambda, var) {
                p.push(m);
            }
        }
        p
    }
}

impl std::fmt::Display for DataDynamicsModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataDynamicsModel::Monotonic => write!(f, "monotonic"),
            DataDynamicsModel::RandomWalk => write!(f, "random-walk"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_rates_match_formulas() {
        let m = DataDynamicsModel::Monotonic;
        let w = DataDynamicsModel::RandomWalk;
        assert!((m.refresh_rate(2.0, 0.5) - 4.0).abs() < 1e-12);
        assert!((w.refresh_rate(2.0, 0.5) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn monomials_evaluate_like_rates() {
        for model in [DataDynamicsModel::Monotonic, DataDynamicsModel::RandomWalk] {
            let mono = model.refresh_monomial(3.0, 0).unwrap();
            for b in [0.1, 1.0, 7.5] {
                assert!((mono.eval(&[b]) - model.refresh_rate(3.0, b)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zero_rate_items_are_skipped() {
        assert!(DataDynamicsModel::Monotonic
            .refresh_monomial(0.0, 0)
            .is_none());
        let p = DataDynamicsModel::Monotonic.refresh_objective([(0.0, 0), (2.0, 1)]);
        assert_eq!(p.n_terms(), 1);
    }

    #[test]
    fn objective_sums_per_item_rates() {
        let p = DataDynamicsModel::RandomWalk.refresh_objective([(1.0, 0), (2.0, 1)]);
        // (1/b0)^2 + (2/b1)^2 at b = (0.5, 1.0) -> 4 + 4.
        assert!((p.eval(&[0.5, 1.0]) - 8.0).abs() < 1e-12);
    }
}
