//! Synthetic dynamic-data traces.
//!
//! The paper replays ~3 h (10,000 s) of real Yahoo! Finance stock traces
//! for 100 data items (§V-A). Real traces are unavailable offline, so this
//! module generates seeded synthetic equivalents: geometric Brownian motion
//! (stock-like), plain random walks, monotonic drifts and sinusoids. The
//! DAB machinery only consumes `(trace, estimated rate)` pairs, so these
//! preserve the behaviour under test (see DESIGN.md §2.3).
//!
//! All values are kept non-negative: the necessary-and-sufficient DAB
//! constraints assume data in the positive orthant (prices, rates, counts).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A per-tick time series for one data item.
///
/// Tick duration is abstract; the paper uses 1 s ticks over 10,000 s.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    values: Vec<f64>,
}

impl Trace {
    /// Wraps raw samples (at least one; all finite and non-negative).
    ///
    /// # Panics
    /// Panics on empty input or non-finite / negative samples.
    pub fn from_values(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "trace must have at least one sample");
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "trace samples must be finite and non-negative"
        );
        Trace { values }
    }

    /// Number of ticks.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the trace has no samples (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at `tick`, clamped to the final value beyond the end.
    pub fn at(&self, tick: usize) -> f64 {
        let i = tick.min(self.values.len() - 1);
        self.values[i]
    }

    /// The first sample.
    pub fn initial(&self) -> f64 {
        self.values[0]
    }

    /// All samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Geometric Brownian motion: `v_{t+1} = v_t * exp(mu + sigma * z)`,
    /// the standard stock-price model. `mu` is per-tick log drift, `sigma`
    /// per-tick log volatility.
    pub fn gbm(initial: f64, mu: f64, sigma: f64, n_ticks: usize, seed: u64) -> Self {
        assert!(initial > 0.0 && n_ticks > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(n_ticks);
        let mut v = initial;
        for _ in 0..n_ticks {
            values.push(v);
            v *= (mu + sigma * standard_normal(&mut rng)).exp();
        }
        Trace { values }
    }

    /// Additive random walk with reflection at zero:
    /// `v_{t+1} = |v_t + step_std * z|`.
    pub fn random_walk(initial: f64, step_std: f64, n_ticks: usize, seed: u64) -> Self {
        assert!(initial >= 0.0 && n_ticks > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(n_ticks);
        let mut v = initial;
        for _ in 0..n_ticks {
            values.push(v);
            v = (v + step_std * standard_normal(&mut rng)).abs();
        }
        Trace { values }
    }

    /// Monotonically increasing drift with non-negative jitter:
    /// `v_{t+1} = v_t + rate * (1 + jitter * u)`, `u ~ U[0,1)`.
    pub fn monotonic(initial: f64, rate: f64, jitter: f64, n_ticks: usize, seed: u64) -> Self {
        assert!(initial >= 0.0 && rate >= 0.0 && jitter >= 0.0 && n_ticks > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(n_ticks);
        let mut v = initial;
        for _ in 0..n_ticks {
            values.push(v);
            v += rate * (1.0 + jitter * rng.gen::<f64>());
        }
        Trace { values }
    }

    /// A sinusoid `center + amplitude * sin(2 pi t / period)`; useful for
    /// deterministic tests of filter escape behaviour.
    ///
    /// # Panics
    /// Panics unless `center >= amplitude >= 0` (values must stay
    /// non-negative).
    pub fn sinusoid(center: f64, amplitude: f64, period: f64, n_ticks: usize) -> Self {
        assert!(amplitude >= 0.0 && center >= amplitude && period > 0.0 && n_ticks > 0);
        let values = (0..n_ticks)
            .map(|t| center + amplitude * (2.0 * std::f64::consts::PI * t as f64 / period).sin())
            .collect();
        Trace { values }
    }

    /// A constant trace (no dynamics).
    pub fn constant(value: f64, n_ticks: usize) -> Self {
        assert!(value >= 0.0 && n_ticks > 0);
        Trace {
            values: vec![value; n_ticks],
        }
    }
}

/// Box–Muller standard normal; avoids pulling in `rand_distr`.
fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// A set of traces, one per data item (item `i` uses trace `i`).
#[derive(Debug, Clone)]
pub struct TraceSet {
    traces: Vec<Trace>,
}

impl TraceSet {
    /// Wraps traces; all must have the same length.
    ///
    /// # Panics
    /// Panics on empty input or mismatched lengths.
    pub fn new(traces: Vec<Trace>) -> Self {
        assert!(!traces.is_empty(), "trace set must not be empty");
        let n = traces[0].len();
        assert!(
            traces.iter().all(|t| t.len() == n),
            "all traces must have equal length"
        );
        TraceSet { traces }
    }

    /// The paper's emulation setup: `n_items` stock-like GBM traces over
    /// `n_ticks` ticks with heterogeneous initial prices ($10–$200) and
    /// per-tick volatilities (0.02 %–0.2 %), seeded deterministically.
    pub fn stock_universe(n_items: usize, n_ticks: usize, seed: u64) -> Self {
        assert!(n_items > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let traces = (0..n_items)
            .map(|i| {
                let initial = 10.0 + 190.0 * rng.gen::<f64>();
                let sigma = 0.0002 + 0.0018 * rng.gen::<f64>();
                let mu = (rng.gen::<f64>() - 0.5) * 2e-5;
                Trace::gbm(
                    initial,
                    mu,
                    sigma,
                    n_ticks,
                    seed ^ (i as u64).wrapping_mul(0x9e3779b9),
                )
            })
            .collect();
        TraceSet::new(traces)
    }

    /// A drift-dominated universe: each item rises monotonically at a
    /// heterogeneous per-tick rate (0.01 %–0.06 % of its initial price)
    /// with uniform jitter. This matches the paper's *monotonic*
    /// data-dynamics model; escape events from validity ranges
    /// synchronize across items, which is the regime where the paper's
    /// Fig. 8 heuristic comparison is run.
    pub fn drifting_universe(n_items: usize, n_ticks: usize, seed: u64) -> Self {
        assert!(n_items > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let traces = (0..n_items)
            .map(|i| {
                let initial = 10.0 + 190.0 * rng.gen::<f64>();
                let rate = initial * (0.0001 + 0.0005 * rng.gen::<f64>());
                Trace::monotonic(
                    initial,
                    rate,
                    1.0,
                    n_ticks,
                    seed ^ (i as u64).wrapping_mul(0x2545F491),
                )
            })
            .collect();
        TraceSet::new(traces)
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.traces.len()
    }

    /// Number of ticks (uniform across items).
    pub fn n_ticks(&self) -> usize {
        self.traces[0].len()
    }

    /// The trace of item `i`.
    pub fn trace(&self, i: usize) -> &Trace {
        &self.traces[i]
    }

    /// All traces.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Snapshot of all values at `tick`.
    pub fn values_at(&self, tick: usize) -> Vec<f64> {
        self.traces.iter().map(|t| t.at(tick)).collect()
    }

    /// Initial values of all items.
    pub fn initial_values(&self) -> Vec<f64> {
        self.traces.iter().map(Trace::initial).collect()
    }

    /// A sub-universe over the given items, in the given order: local
    /// item `k` of the result replays the trace of global item
    /// `items[k]`. The sharded engine uses this to hand each shard a
    /// dense trace set for exactly the items it owns or replicates.
    ///
    /// # Panics
    /// Panics if any index is out of range (and, via [`TraceSet::new`],
    /// if `items` is empty).
    pub fn subset(&self, items: &[u32]) -> TraceSet {
        TraceSet::new(
            items
                .iter()
                .map(|&i| self.traces[i as usize].clone())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbm_is_positive_and_seed_deterministic() {
        let a = Trace::gbm(100.0, 0.0, 0.01, 500, 7);
        let b = Trace::gbm(100.0, 0.0, 0.01, 500, 7);
        let c = Trace::gbm(100.0, 0.0, 0.01, 500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.values().iter().all(|&v| v > 0.0));
        assert_eq!(a.len(), 500);
        assert_eq!(a.initial(), 100.0);
    }

    #[test]
    fn random_walk_reflects_at_zero() {
        let t = Trace::random_walk(0.5, 5.0, 2000, 42);
        assert!(t.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn monotonic_never_decreases() {
        let t = Trace::monotonic(10.0, 0.1, 0.5, 1000, 3);
        for w in t.values().windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn sinusoid_stays_in_band() {
        let t = Trace::sinusoid(10.0, 2.0, 100.0, 1000);
        assert!(t.values().iter().all(|&v| (8.0..=12.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "center >= amplitude")]
    fn sinusoid_rejects_negative_excursions() {
        let _ = Trace::sinusoid(1.0, 2.0, 100.0, 10);
    }

    #[test]
    fn at_clamps_past_end() {
        let t = Trace::from_values(vec![1.0, 2.0, 3.0]);
        assert_eq!(t.at(0), 1.0);
        assert_eq!(t.at(2), 3.0);
        assert_eq!(t.at(99), 3.0);
    }

    #[test]
    fn stock_universe_shape_and_determinism() {
        let u = TraceSet::stock_universe(20, 100, 11);
        assert_eq!(u.n_items(), 20);
        assert_eq!(u.n_ticks(), 100);
        let v0 = u.initial_values();
        assert!(v0.iter().all(|&v| (10.0..=200.0).contains(&v)));
        let u2 = TraceSet::stock_universe(20, 100, 11);
        assert_eq!(u.values_at(50), u2.values_at(50));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn trace_set_rejects_ragged_lengths() {
        TraceSet::new(vec![Trace::constant(1.0, 10), Trace::constant(1.0, 11)]);
    }
}
