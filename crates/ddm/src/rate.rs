//! Rate-of-change estimation.
//!
//! The DAB formulations weight each item's filter width by its estimated
//! rate of change `lambda_i` (§III-A.1). The paper estimates it by sampling
//! the trace at fixed intervals (60 s) and averaging `|delta| / interval`
//! over the whole trace (§V-A); the `lambda_i = 1` configuration (curves
//! labelled *L1* in Fig. 6) ignores rate information entirely.

use crate::trace::{Trace, TraceSet};

/// How per-item rates of change are obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateEstimator {
    /// The paper's method: sample every `interval_ticks`, average
    /// `|delta| / interval` across the trace.
    SampledAverage {
        /// Sampling interval in ticks (the paper uses 60).
        interval_ticks: usize,
    },
    /// Exponentially weighted variant of the sampled average, weighting
    /// recent intervals more (smoothing factor `alpha` in `(0, 1]`).
    Ewma {
        /// Sampling interval in ticks.
        interval_ticks: usize,
        /// Smoothing factor; higher tracks recent changes more closely.
        alpha: f64,
    },
    /// Standard deviation of per-tick increments; the natural `sigma` for
    /// the random-walk data-dynamics model.
    StepStd,
    /// No rate information: every item gets `lambda = 1` (*L1* in Fig. 6).
    Unit,
}

impl RateEstimator {
    /// Estimates the rate of one trace. Always returns a strictly positive,
    /// finite value (degenerate traces get a tiny floor so that GP
    /// objectives stay well-posed).
    pub fn estimate(&self, trace: &Trace) -> f64 {
        let raw = match *self {
            RateEstimator::SampledAverage { interval_ticks } => {
                sampled_average(trace, interval_ticks.max(1))
            }
            RateEstimator::Ewma {
                interval_ticks,
                alpha,
            } => ewma(trace, interval_ticks.max(1), alpha.clamp(1e-6, 1.0)),
            RateEstimator::StepStd => step_std(trace),
            RateEstimator::Unit => 1.0,
        };
        if raw.is_finite() && raw > 0.0 {
            raw
        } else {
            1e-9
        }
    }

    /// Estimates rates for every item of a trace set.
    pub fn estimate_all(&self, traces: &TraceSet) -> Vec<f64> {
        traces.traces().iter().map(|t| self.estimate(t)).collect()
    }
}

fn sampled_average(trace: &Trace, interval: usize) -> f64 {
    let v = trace.values();
    if v.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    let mut prev = v[0];
    let mut t = interval;
    while t < v.len() {
        total += (v[t] - prev).abs() / interval as f64;
        prev = v[t];
        count += 1;
        t += interval;
    }
    if count == 0 {
        // Interval longer than the trace: fall back to endpoints.
        return (v[v.len() - 1] - v[0]).abs() / (v.len() - 1) as f64;
    }
    total / count as f64
}

fn ewma(trace: &Trace, interval: usize, alpha: f64) -> f64 {
    let v = trace.values();
    if v.len() < 2 {
        return 0.0;
    }
    let mut est = 0.0;
    let mut initialized = false;
    let mut prev = v[0];
    let mut t = interval;
    while t < v.len() {
        let sample = (v[t] - prev).abs() / interval as f64;
        if initialized {
            est = alpha * sample + (1.0 - alpha) * est;
        } else {
            est = sample;
            initialized = true;
        }
        prev = v[t];
        t += interval;
    }
    if !initialized {
        return sampled_average(trace, interval);
    }
    est
}

fn step_std(trace: &Trace) -> f64 {
    let v = trace.values();
    if v.len() < 2 {
        return 0.0;
    }
    let n = (v.len() - 1) as f64;
    let mean: f64 = v.windows(2).map(|w| w[1] - w[0]).sum::<f64>() / n;
    let var: f64 = v
        .windows(2)
        .map(|w| {
            let d = (w[1] - w[0]) - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_ramp_rate_is_slope() {
        // v_t = 5 + 0.5 t: slope 0.5 under any sampling interval.
        let t = Trace::from_values((0..600).map(|i| 5.0 + 0.5 * i as f64).collect());
        for interval in [1, 10, 60] {
            let r = RateEstimator::SampledAverage {
                interval_ticks: interval,
            }
            .estimate(&t);
            assert!((r - 0.5).abs() < 1e-12, "interval {interval}: {r}");
        }
    }

    #[test]
    fn unit_estimator_ignores_trace() {
        let t = Trace::from_values(vec![1.0, 100.0, 1.0]);
        assert_eq!(RateEstimator::Unit.estimate(&t), 1.0);
    }

    #[test]
    fn constant_trace_gets_positive_floor() {
        let t = Trace::constant(7.0, 100);
        let r = RateEstimator::SampledAverage { interval_ticks: 10 }.estimate(&t);
        assert!(r > 0.0, "rate must stay positive for GP objectives");
    }

    #[test]
    fn step_std_matches_known_walk() {
        // Alternating +1/-1 steps: per-step std is 1, mean 0.
        let mut vals = vec![10.0];
        for i in 0..999 {
            let last = *vals.last().unwrap();
            vals.push(if i % 2 == 0 { last + 1.0 } else { last - 1.0 });
        }
        let t = Trace::from_values(vals);
        let r = RateEstimator::StepStd.estimate(&t);
        assert!((r - 1.0).abs() < 1e-2, "{r}");
    }

    #[test]
    fn interval_longer_than_trace_falls_back_to_endpoints() {
        let t = Trace::from_values(vec![0.0, 1.0, 2.0, 3.0]);
        let r = RateEstimator::SampledAverage {
            interval_ticks: 100,
        }
        .estimate(&t);
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_tracks_recent_rate() {
        // First half flat, second half rising at 1/tick: EWMA (high alpha)
        // should be near 1, plain average near 0.5.
        let mut vals: Vec<f64> = vec![10.0; 500];
        for i in 0..500 {
            vals.push(10.0 + i as f64);
        }
        let t = Trace::from_values(vals);
        let ewma = RateEstimator::Ewma {
            interval_ticks: 10,
            alpha: 0.5,
        }
        .estimate(&t);
        let avg = RateEstimator::SampledAverage { interval_ticks: 10 }.estimate(&t);
        assert!(ewma > 0.9, "ewma {ewma}");
        assert!((avg - 0.5).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn estimate_all_covers_every_item() {
        let ts = crate::trace::TraceSet::stock_universe(5, 200, 1);
        let rates = RateEstimator::SampledAverage { interval_ticks: 60 }.estimate_all(&ts);
        assert_eq!(rates.len(), 5);
        assert!(rates.iter().all(|&r| r > 0.0 && r.is_finite()));
    }
}
