//! Global portfolio monitoring (Query 1(a) of the paper).
//!
//! A fund tracks `sum_i (shares_i * price_i * fx_j)` across exchanges.
//! Both prices and FX rates move continuously; the user tolerates $500 of
//! imprecision. We generate stock-like traces, estimate rates of change
//! the way the paper does, install Dual-DAB filters, and replay the traces
//! through the `Monitor`, reporting the message economics at the end.
//!
//! Run with: `cargo run --release --example portfolio_monitor`

use polyquery::core::AssignmentStrategy;
use polyquery::{Monitor, PolynomialQuery, RateEstimator, Trace};

fn main() {
    // --- Market data: 6 stocks on 2 exchanges + 2 FX rates ---------------
    let names = [
        "aapl", "msft", "goog", "tsmc", "sony", "asml", "usd_eur", "usd_jpy",
    ];
    let n_ticks = 3600; // one hour at 1 s ticks
    let traces: Vec<Trace> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let initial = if name.starts_with("usd") {
                1.0
            } else {
                80.0 + 30.0 * i as f64
            };
            let sigma = if name.starts_with("usd") {
                0.00005
            } else {
                0.0006
            };
            Trace::gbm(initial, 0.0, sigma, n_ticks, 0xF00D + i as u64)
        })
        .collect();

    // Rate estimation exactly as §V-A: sample every 60 s, average.
    let estimator = RateEstimator::SampledAverage { interval_ticks: 60 };

    let mut monitor = Monitor::new().with_strategy(AssignmentStrategy::DualDab { mu: 5.0 });
    let ids: Vec<_> = names
        .iter()
        .zip(&traces)
        .map(|(name, tr)| monitor.add_item(name, tr.initial(), estimator.estimate(tr)))
        .collect();

    // Portfolio: US leg in EUR terms, Asia leg in JPY terms.
    let shares = [120.0, 80.0, 20.0, 300.0, 150.0, 40.0];
    let legs: Vec<(f64, _, _)> = (0..6)
        .map(|i| {
            let fx = if i < 3 { ids[6] } else { ids[7] };
            (shares[i], ids[i], fx)
        })
        .collect();
    let q = monitor.add_query(PolynomialQuery::portfolio(legs, 500.0).unwrap());

    let filters = monitor.install().unwrap();
    println!("Installed source filters:");
    for (item, b) in &filters {
        let name = names[item.index()];
        println!("  {name:<8} +/- {b:.5}");
    }
    println!(
        "\nInitial portfolio value: ${:.2} (accuracy +/- $500)\n",
        monitor.query_value(q).unwrap()
    );

    // --- Replay: sources push only when their filter is exceeded ---------
    let mut last_pushed: Vec<f64> = traces.iter().map(Trace::initial).collect();
    let mut filters_now: Vec<f64> = ids.iter().map(|&id| monitor.filter(id).unwrap()).collect();
    let (mut refreshes, mut notifications, mut recomputations) = (0u64, 0u64, 0u64);
    for tick in 1..n_ticks {
        for (i, tr) in traces.iter().enumerate() {
            let v = tr.at(tick);
            if (v - last_pushed[i]).abs() > filters_now[i] {
                last_pushed[i] = v;
                refreshes += 1;
                let out = monitor.on_refresh(ids[i], v).unwrap();
                notifications += out.notify.len() as u64;
                recomputations += out.recomputed.len() as u64;
                for (item, b) in out.filter_changes {
                    filters_now[item.index()] = b;
                }
            }
        }
    }

    println!("After {n_ticks} seconds of trading:");
    println!("  refreshes pushed to coordinator : {refreshes}");
    println!("  user notifications              : {notifications}");
    println!("  DAB recomputations              : {recomputations}");
    println!(
        "  final portfolio value           : ${:.2}",
        monitor.query_value(q).unwrap()
    );
    println!(
        "\nWithout filters every tick of every item would be shipped: {} messages.",
        (n_ticks - 1) * names.len()
    );
}
