//! Quickstart: the Fig. 2 / Fig. 4 walk-through from the paper.
//!
//! A single product query `Q = x*y : 5` starting at `V = (2, 2)`. We show
//! why single optimal DABs go stale on the first refresh (Fig. 2), then
//! install a Dual-DAB assignment and replay the paper's value sequence —
//! the primary DABs stay valid across all of it (Fig. 4).
//!
//! Run with: `cargo run --example quickstart`

use polyquery::core::{dual_dab, optimal_refresh, SolveContext};
use polyquery::{ItemId, Monitor, Obs, PolynomialQuery, ValidityRange};

fn main() {
    let x = ItemId(0);
    let y = ItemId(1);
    let query = PolynomialQuery::portfolio([(1.0, x, y)], 5.0).unwrap();
    let values = [2.0, 2.0];
    let rates = [1.0, 1.0];
    let ctx = SolveContext::new(&values, &rates);

    println!("Query: {query}   at V = {values:?}\n");

    // --- Optimal Refresh (Conditions 1+2 only, §III-A.1) -----------------
    let opt = optimal_refresh(&query, &ctx).unwrap();
    println!("Optimal Refresh DABs (valid only at the anchor):");
    for (&item, &b) in &opt.primary {
        println!("  b_{item} = {b:.4}");
    }
    println!("  estimated refreshes/unit time = {:.4}", opt.refresh_rate);
    println!("  -> every refresh invalidates them (Fig. 2)\n");

    // --- Dual-DAB (§III-A.2) ---------------------------------------------
    let dual = dual_dab(&query, &ctx, 5.0).unwrap();
    println!("Dual-DAB assignment (mu = 5):");
    for (&item, &b) in &dual.primary {
        let c = dual.secondary_dab(item).unwrap();
        println!("  b_{item} = {b:.4}   c_{item} = {c:.4}");
    }
    println!(
        "  estimated refreshes = {:.4}, recomputations = {:.4}\n",
        dual.refresh_rate, dual.recompute_rate
    );
    assert!(matches!(dual.validity, ValidityRange::Box(_)));

    // Replay the paper's Fig. 4 sequence; the assignment stays valid while
    // the values remain inside the secondary box.
    println!("Replaying Fig. 4's data movements:");
    for vals in [[3.0, 2.0], [3.5, 2.5], [3.9, 2.9]] {
        println!(
            "  V(C) = {vals:?}  assignment valid: {}",
            dual.is_valid_at(&vals)
        );
    }

    // --- The deployable API ------------------------------------------------
    // Attach telemetry: an in-memory ring buffer captures structured events
    // while the registry accumulates counters and latency histograms. Use
    // `ObsConfig { jsonl: Some(path.into()), .. }` + `with_obs_config` to
    // stream the same events to a JSONL trace file instead.
    println!("\nMonitor runtime:");
    let (obs, ring) = Obs::ring(4096);
    let mut monitor = Monitor::new().with_obs(obs);
    let mx = monitor.add_item("x", 2.0, 1.0);
    let my = monitor.add_item("y", 2.0, 1.0);
    let q = monitor.add_query(PolynomialQuery::portfolio([(1.0, mx, my)], 5.0).unwrap());
    let filters = monitor.install().unwrap();
    for (item, b) in &filters {
        println!("  ship filter {b:.4} to source of {item}");
    }
    let out = monitor.on_refresh(mx, 3.0).unwrap();
    println!(
        "  refresh x=3.0: notify {} user(s), recomputed {} quer(ies)",
        out.notify.len(),
        out.recomputed.len()
    );
    let out = monitor.on_refresh(my, 9.0).unwrap();
    println!(
        "  refresh y=9.0: query value now {:.1}, notified = {}",
        monitor.query_value(q).unwrap(),
        !out.notify.is_empty()
    );

    // --- Telemetry recorded along the way ----------------------------------
    let snapshot = monitor.obs().snapshot();
    println!("\nTelemetry ({} events captured):", ring.events().len());
    if let Some(h) = snapshot.histograms.get("gp.solve_ns") {
        println!(
            "  {} GP solves, median {:.1} us, p99 {:.1} us",
            h.count,
            h.p50 as f64 / 1_000.0,
            h.p99 as f64 / 1_000.0
        );
    }
    for event in ring.events() {
        if event.target.starts_with("monitor.") {
            println!("  event: {}", polyquery::obs::to_json(&event));
        }
    }
}
