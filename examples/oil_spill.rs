//! Tracking a physical phenomenon (the paper's oil-spill example, §I).
//!
//! Sensors report points `(x_i, y_i)` on the perimeter of a roughly
//! circular spill; the monitored quantity is the area estimate
//! `pi/k * sum_i ((x_i - x_0)^2 + (y_i - y_0)^2)` where `(x_0, y_0)` is
//! the centre. Expanding the squares gives a polynomial with *negative*
//! cross terms (`-2 x_i x_0`), i.e. a general PQ with squared items — a
//! different shape from the financial product queries. The response team
//! tolerates 250 m^2 of imprecision.
//!
//! Run with: `cargo run --example oil_spill`

use polyquery::poly::{PTerm, Polynomial};
use polyquery::{ItemId, Monitor, PolynomialQuery};

fn main() {
    let k = 4usize; // perimeter sensors
    let mut monitor = Monitor::new();

    // Perimeter sensors roughly 50 m from a centre near (200, 300).
    let centre = (200.0, 300.0);
    let radius = 50.0;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..k {
        let angle = 2.0 * std::f64::consts::PI * i as f64 / k as f64;
        let (sx, sy) = (
            centre.0 + radius * angle.cos(),
            centre.1 + radius * angle.sin(),
        );
        xs.push(monitor.add_item(&format!("px{i}"), sx, 0.4));
        ys.push(monitor.add_item(&format!("py{i}"), sy, 0.4));
    }
    // The centre estimate is itself dynamic data (average of the points,
    // maintained by the sensor gateway).
    let x0 = monitor.add_item("cx", centre.0, 0.1);
    let y0 = monitor.add_item("cy", centre.1, 0.1);

    // Area ~ pi/k * sum_i ((x_i - x_0)^2 + (y_i - y_0)^2)
    //      = pi/k * sum_i (x_i^2 - 2 x_i x_0 + x_0^2 + ...)
    let w = std::f64::consts::PI / k as f64;
    let mut terms: Vec<PTerm> = Vec::new();
    let push_pair = |terms: &mut Vec<PTerm>, p: ItemId, c: ItemId| {
        terms.push(PTerm::new(w, [(p, 2)]).unwrap());
        terms.push(PTerm::new(-2.0 * w, [(p, 1), (c, 1)]).unwrap());
        terms.push(PTerm::new(w, [(c, 2)]).unwrap());
    };
    for i in 0..k {
        push_pair(&mut terms, xs[i], x0);
        push_pair(&mut terms, ys[i], y0);
    }
    let area = PolynomialQuery::new(Polynomial::from_terms(terms), 250.0).unwrap();
    println!(
        "Spill-area query over {} data items, QAB = 250 m^2",
        area.items().len()
    );

    let q = monitor.add_query(area);
    let filters = monitor.install().unwrap();
    println!("Installed {} sensor filters; sample:", filters.len());
    for (item, b) in filters.iter().take(4) {
        println!("  sensor {item}: +/- {b:.3} m");
    }
    println!(
        "\nInitial area estimate: {:.0} m^2 (true circle: {:.0} m^2)",
        monitor.query_value(q).unwrap(),
        std::f64::consts::PI * radius * radius
    );

    // The spill grows: perimeter sensors drift outward ~0.4 m per report.
    println!("\nSpill growing...");
    let mut notifications = 0;
    let mut recomputes = 0;
    for step in 1..=60 {
        let growth = radius + 0.4 * step as f64;
        for i in 0..k {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / k as f64;
            let out = monitor
                .on_refresh(xs[i], centre.0 + growth * angle.cos())
                .unwrap();
            notifications += out.notify.len();
            recomputes += out.recomputed.len();
            let out = monitor
                .on_refresh(ys[i], centre.1 + growth * angle.sin())
                .unwrap();
            notifications += out.notify.len();
            recomputes += out.recomputed.len();
        }
        if step % 20 == 0 {
            println!(
                "  after {step:>2} reports: area = {:>7.0} m^2",
                monitor.query_value(q).unwrap()
            );
        }
    }
    println!(
        "\n{notifications} user notifications, {recomputes} DAB recomputations \
         while the area stayed within 250 m^2 of truth."
    );
    assert!(notifications > 0);
}
