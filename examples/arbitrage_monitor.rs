//! Arbitrage monitoring (Query 1(b)): a mixed-sign polynomial query.
//!
//! The spread `buy_price * fx_a - sell_price * fx_b` flips sign when an
//! arbitrage opportunity appears; the user wants the spread within 0.5
//! currency units at all times. Mixed-sign polynomials defeat the optimal
//! GP formulation, so the paper's Half-and-Half and Different-Sum
//! heuristics apply — this example runs both and compares their modelled
//! costs, then drives the Different-Sum assignment through the Monitor.
//!
//! Run with: `cargo run --example arbitrage_monitor`

use polyquery::core::{general_pq, PpqMethod, PqHeuristic, SolveContext};
use polyquery::{Monitor, PolynomialQuery, PqHeuristic as Heuristic};

fn main() {
    // Items: buy price, fx at buy venue, sell price, fx at sell venue.
    let mut monitor = Monitor::new().with_heuristic(Heuristic::DifferentSum);
    let buy = monitor.add_item("buy_px", 40.0, 0.08);
    let fx_a = monitor.add_item("fx_a", 1.10, 0.001);
    let sell = monitor.add_item("sell_px", 44.0, 0.08);
    let fx_b = monitor.add_item("fx_b", 0.99, 0.001);

    let query = PolynomialQuery::arbitrage([(1.0, buy, fx_a)], [(1.0, sell, fx_b)], 0.5).unwrap();
    println!("Arbitrage query: {query}");
    println!(
        "Initial spread: {:.4}\n",
        query.eval(&[40.0, 1.10, 44.0, 0.99])
    );

    // --- Compare the two §III-B heuristics --------------------------------
    let values = [40.0, 1.10, 44.0, 0.99];
    let rates = [0.08, 0.001, 0.08, 0.001];
    let ctx = SolveContext::new(&values, &rates);
    for heuristic in [PqHeuristic::HalfAndHalf, PqHeuristic::DifferentSum] {
        let a = general_pq(&query, &ctx, heuristic, PpqMethod::DualDab { mu: 5.0 }).unwrap();
        println!("{heuristic:?}:");
        for (&item, &b) in &a.primary {
            println!("  b_{item} = {b:.5}");
        }
        println!(
            "  modelled refreshes/s = {:.4}, recomputations/s = {:.5}, cost(mu=5) = {:.4}\n",
            a.refresh_rate,
            a.recompute_rate,
            a.refresh_rate + 5.0 * a.recompute_rate
        );
    }

    // --- Live monitoring with Different Sum -------------------------------
    monitor.add_query(query);
    monitor.install().unwrap();

    println!("Feeding a converging-spread scenario:");
    // The sell price drifts down toward the buy side: spread closes, the
    // user must hear about it.
    let mut notified = 0;
    for step in 0..12 {
        let px = 44.0 - 0.45 * step as f64;
        let out = monitor.on_refresh(sell, px).unwrap();
        for (q, v) in &out.notify {
            notified += 1;
            println!("  step {step:>2}: sell={px:.2}  -> notify user: {q} spread = {v:+.3}");
        }
    }
    assert!(notified > 0, "the closing spread must reach the user");
    println!("\n{notified} notifications; accuracy bound held throughout.");
}
