//! Offline stand-in for the `criterion` crate.
//!
//! The build environment resolves path dependencies only, so the real
//! `criterion` cannot be downloaded. This crate keeps polyquery's bench
//! targets compiling and runnable: it implements [`Criterion`],
//! [`Bencher::iter`], benchmark groups, [`BenchmarkId`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — each benchmark runs a bounded
//! number of timed iterations and prints the median per-iteration time.
//! There is no statistical analysis, warm-up tuning, or HTML reporting.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A set of related benchmarks sharing a group name and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Finishes the group (upstream emits summary reports here; the
    /// stand-in has already printed per-benchmark lines).
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id rendering `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Times a routine. Handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u128>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples_ns: Vec::new(),
        }
    }

    /// Runs `routine` repeatedly, recording wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed call to warm caches before sampling.
        std_black_box(routine());
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }

    fn report(mut self, name: &str) {
        if self.samples_ns.is_empty() {
            eprintln!("bench {name:<40} (no samples)");
            return;
        }
        self.samples_ns.sort_unstable();
        let median = self.samples_ns[self.samples_ns.len() / 2];
        eprintln!(
            "bench {name:<40} median {} ({} samples)",
            fmt_ns(median),
            self.samples_ns.len()
        );
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0usize;
        let mut c = Criterion::default();
        c.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        // warm-up + sample_size timed iterations.
        assert!(calls > Criterion::default().sample_size);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        for n in [1usize, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
        }
        group.finish();
    }
}
