//! The [`Strategy`] trait and its built-in implementations.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<T: std::fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Retries generation until `f` accepts the value. `reason` is
    /// reported if no accepted value is found within the retry budget.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: std::fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted its retry budget: {}", self.reason);
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A.0, B.1);
impl_strategy_tuple!(A.0, B.1, C.2);
impl_strategy_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}
