//! Offline stand-in for the `proptest` crate.
//!
//! The build environment resolves path dependencies only, so the real
//! `proptest` cannot be downloaded. This crate implements the slice of
//! the 1.x API that polyquery's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_filter`, implemented
//!   for numeric ranges, tuples, and arrays;
//! * [`collection::vec`] and [`option::of`];
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from real proptest: generation is plain random sampling
//! (no shrinking — a failure reports the generated inputs instead), and
//! streams are deterministic per test name so failures reproduce.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The admissible length range of a generated `Vec`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Strategies for `Option`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Some` (about 80% of the time) or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() % 5 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Runs property test cases. Prefer the form with a config header:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0.0f64..1.0, b in 0.0f64..1.0) {
///         prop_assert!((a + b - (b + a)).abs() < 1e-12);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rejects: u64 = 0;
            let max_rejects = (config.cases as u64) * 64;
            let mut case: u32 = 0;
            let mut attempt: u64 = 0;
            while case < config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    stringify!($name),
                    attempt,
                );
                attempt += 1;
                $(let $arg = ($strat).generate(&mut rng);)+
                let rendered = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(concat!("  ", stringify!($arg), " = "));
                        s.push_str(&format!("{:?}\n", &$arg));
                    )+
                    s
                };
                let outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > max_rejects {
                            panic!(
                                "proptest {}: too many rejected cases ({rejects})",
                                stringify!($name),
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {case}: {msg}\ninputs:\n{rendered}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (with generated inputs reported) rather than unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Discards the current case (without failing) when an assumption about
/// the generated inputs does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_arrays_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::for_case("smoke", 0);
        for _ in 0..200 {
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let u = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&u));
            let (a, b, c) = ((0.0f64..1.0), (0u32..4), (1u32..3)).generate(&mut rng);
            assert!((0.0..1.0).contains(&a) && b < 4 && (1..3).contains(&c));
            let arr = [0.1f64..1.0, 0.1f64..1.0, 0.1f64..1.0].generate(&mut rng);
            assert_eq!(arr.len(), 3);
            let v = crate::collection::vec(0.0f64..1.0, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let o = crate::option::of(0u32..2).generate(&mut rng);
            assert!(o.is_none() || o.unwrap() < 2);
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let mut rng = TestRng::for_case("compose", 1);
        let s = (1u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("multiple of 4", |v| v % 4 == 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 4 == 0 && v < 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_assumes(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            prop_assume!(a > 0.01);
            prop_assert!(a + b >= a);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
