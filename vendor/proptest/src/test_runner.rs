//! Configuration, case outcomes, and the deterministic test RNG.

/// Knobs for a [`proptest!`](crate::proptest) block. Only `cases` is
/// supported here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The outcome of a single failed or discarded test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` — retried, not failed.
    Reject(&'static str),
    /// The case failed a `prop_assert!` — the whole property fails.
    Fail(String),
}

/// Deterministic per-case RNG (SplitMix64 over a hash of the test name
/// and case index), so failures reproduce run-to-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the property named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 uniformly distributed bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
