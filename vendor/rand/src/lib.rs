//! Offline stand-in for the `rand` crate.
//!
//! The build environment resolves path dependencies only, so the real
//! `rand` cannot be downloaded. This crate implements the slice of the
//! 0.8 API that polyquery uses — [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`
//! — on top of xoshiro256++ seeded via SplitMix64.
//!
//! Streams are deterministic for a given seed (which is all the
//! simulator and workloads rely on) but do **not** match upstream
//! `rand`'s ChaCha-based `StdRng` bit-for-bit, so absolute experiment
//! numbers shift relative to runs against the real crate. Trends and
//! within-run comparisons are unaffected.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generator types.

    /// A deterministic xoshiro256++ generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding routine.
            let mut z = seed;
            let mut next = move || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }
}

/// The raw entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value sampled from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for
    /// integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value uniformly sampled from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * u
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
